//! Per-run artifact exporters.
//!
//! A run exports up to seven files under `results/<run>/`:
//!
//! * `manifest.json` — seed, topology, config, simulator backend
//!   settings, git describe;
//! * `counters.json` — exact per-kind event counts plus the event-loop
//!   profile rows;
//! * `events.json` — the stored [`EventRecord`]s (sampled/ring-bounded);
//! * `flows.json` — per-flow ground-truth summaries from the simulator;
//! * `tfc_slots.csv` — the per-port TFC gauge time series;
//! * `spans.json` — per-hop lifecycle-span sketches (only when span
//!   tracing is on, so `TraceConfig::Off` artifact sets stay
//!   byte-identical to pre-span runs);
//! * `traces.csv` — the legacy named rho/queue time series from
//!   `simnet::trace::TraceCenter` (only when non-empty).
//!
//! Everything is plain JSON/CSV readable by `tfc-trace` (via
//! [`crate::json::parse`]) or any external tool.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::process::Command;

use metrics::QuantileSketch;

use crate::counters::{LoopStats, PortSlotSample};
use crate::event::{EventLog, EventRecord, TraceEvent, EVENT_KIND_NAMES};
use crate::json::{Map, Value};
use crate::span::SpanTracker;

/// Metadata making a run reproducible from its artifacts alone.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Run name (the directory under `results/`).
    pub run: String,
    /// Simulation seed.
    pub seed: u64,
    /// Human-readable topology description.
    pub topology: String,
    /// Experiment / protocol configuration (usually the `Debug` form).
    pub config: String,
    /// `git describe` of the tree that produced the artifacts.
    pub git: String,
    /// Simulator backend settings, when the run came from the event
    /// loop (`None` for figure dumps and other non-sim artifacts).
    pub sim: Option<SimMeta>,
}

/// Which simulator backend produced a run — recorded in the manifest so
/// artifacts are self-describing (`tfc-trace diff` ignores none of
/// these: a heap run and a wheel run of the same experiment are still
/// the same simulation, but the manifest says which one you're holding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimMeta {
    /// Event-queue backend (`Debug` form of `SchedulerKind`).
    pub scheduler: String,
    /// Whether same-tick switch arrivals were batch-dispatched.
    pub coalesce: bool,
    /// Lifecycle-span tracing mode ([`crate::TraceConfig::describe`]).
    pub trace: String,
}

/// Best-effort `git describe --always --dirty` of the working tree;
/// `"unknown"` outside a repository or without git.
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Where run artifacts and figure dumps go (`TFC_RESULTS_DIR` overrides
/// the default `results`).
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("TFC_RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

/// Per-flow ground truth copied out of the simulator after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSummary {
    /// Flow id.
    pub flow: u64,
    /// Source host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Requested size in bytes (0 = open-ended).
    pub bytes: u64,
    /// In-order bytes delivered to the application.
    pub delivered: u64,
    /// Packets retransmitted.
    pub retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Start time (ns).
    pub started_ns: u64,
    /// Handshake completion time (ns), if reached.
    pub established_ns: Option<u64>,
    /// Receiver completion time (ns), if reached.
    pub receiver_done_ns: Option<u64>,
    /// Sender completion time (ns), if reached.
    pub sender_done_ns: Option<u64>,
}

fn manifest_json(m: &RunManifest) -> Value {
    let mut doc = crate::json!({
        "run": m.run.as_str(),
        "seed": m.seed,
        "topology": m.topology.as_str(),
        "config": m.config.as_str(),
        "git": m.git.as_str(),
    });
    if let (Value::Object(map), Some(sim)) = (&mut doc, &m.sim) {
        map.insert(
            "sim".to_string(),
            crate::json!({
                "scheduler": sim.scheduler.as_str(),
                "coalesce": sim.coalesce,
                "trace": sim.trace.as_str(),
            }),
        );
    }
    doc
}

fn counters_json(log: &EventLog, loop_stats: &LoopStats) -> Value {
    let mut events = Map::new();
    for (name, count) in EVENT_KIND_NAMES.iter().zip(log.counts()) {
        events.insert((*name).to_string(), Value::from(*count));
    }
    // Batch counts (like nanos) describe the dispatch schedule, not the
    // simulation: they differ between coalesced and uncoalesced runs of
    // the same sim. Export them only under the wall-clock profile so
    // unprofiled artifacts stay byte-identical across dispatch modes.
    let profiled = loop_stats.profiled();
    let loop_rows: Vec<Value> = loop_stats
        .rows()
        .map(|(name, count, batches, nanos)| {
            if profiled {
                crate::json!({
                    "event": name,
                    "count": count,
                    "batches": batches,
                    "nanos": nanos,
                })
            } else {
                crate::json!({"event": name, "count": count, "nanos": nanos})
            }
        })
        .collect();
    let mut doc = crate::json!({
        "events": Value::Object(events),
        "stored": log.len(),
        "evicted": log.evicted(),
        "sampled_out": log.sampled_out(),
        "loop": Value::Array(loop_rows),
        "loop_total": loop_stats.total(),
        "loop_total_nanos": loop_stats.total_nanos(),
    });
    // Shard counters describe the sharded scheduler's dispatch plumbing,
    // not the simulation, and (like batch counts) they vary with the
    // backend — export them only under the profile so unprofiled
    // artifacts stay byte-identical across scheduler kinds.
    let (windows, shard_rows) = loop_stats.shard_rows();
    if profiled && !shard_rows.is_empty() {
        let rows: Vec<Value> = shard_rows
            .iter()
            .enumerate()
            .map(|(i, &(pushes, drained))| {
                crate::json!({"shard": i, "pushes": pushes, "drained": drained})
            })
            .collect();
        if let Value::Object(map) = &mut doc {
            map.insert("shard_windows".to_string(), Value::from(windows));
            map.insert("shards".to_string(), Value::Array(rows));
        }
    }
    doc
}

/// The JSON form of one event record (the schema documented in the
/// repository README).
pub fn record_json(r: &EventRecord) -> Value {
    let mut m = Map::new();
    let mut put = |k: &str, v: Value| {
        m.insert(k.to_string(), v);
    };
    put("at_ns", r.at_ns.into());
    put("kind", r.event.kind_name().into());
    match r.event {
        TraceEvent::PktEnqueue {
            node,
            port,
            flow,
            seq,
            bytes,
            queue_bytes,
        } => {
            put("node", node.into());
            put("port", port.into());
            put("flow", flow.into());
            put("seq", seq.into());
            put("bytes", bytes.into());
            put("queue_bytes", queue_bytes.into());
        }
        TraceEvent::PktDequeue {
            node,
            port,
            flow,
            seq,
            bytes,
        }
        | TraceEvent::PktDrop {
            node,
            port,
            flow,
            seq,
            bytes,
        } => {
            put("node", node.into());
            put("port", port.into());
            put("flow", flow.into());
            put("seq", seq.into());
            put("bytes", bytes.into());
        }
        TraceEvent::PktEcnMark {
            node,
            port,
            flow,
            seq,
        } => {
            put("node", node.into());
            put("port", port.into());
            put("flow", flow.into());
            put("seq", seq.into());
        }
        TraceEvent::PktRoundMark {
            node,
            port,
            flow,
            seq,
            window,
        } => {
            put("node", node.into());
            put("port", port.into());
            put("flow", flow.into());
            put("seq", seq.into());
            put("window", window.into());
        }
        TraceEvent::PktDeliver { node, flow, bytes } => {
            put("node", node.into());
            put("flow", flow.into());
            put("bytes", bytes.into());
        }
        TraceEvent::PktAck { node, flow, ack } => {
            put("node", node.into());
            put("flow", flow.into());
            put("ack", ack.into());
        }
        TraceEvent::FlowOpen {
            flow,
            src,
            dst,
            bytes,
        } => {
            put("flow", flow.into());
            put("src", src.into());
            put("dst", dst.into());
            put("bytes", bytes.into());
        }
        TraceEvent::FlowEstablished { flow }
        | TraceEvent::FlowRetransmit { flow }
        | TraceEvent::FlowRto { flow } => {
            put("flow", flow.into());
        }
        TraceEvent::FlowWindowAcquired { flow, window } => {
            put("flow", flow.into());
            put("window", window.into());
        }
        TraceEvent::FlowFin { flow, delivered } => {
            put("flow", flow.into());
            put("delivered", delivered.into());
        }
        TraceEvent::FlowRttSample { flow, nanos } => {
            put("flow", flow.into());
            put("nanos", nanos.into());
        }
        TraceEvent::FaultInjected {
            kind,
            node,
            port,
            value,
        }
        | TraceEvent::FaultCleared {
            kind,
            node,
            port,
            value,
        } => {
            put("fault", kind.into());
            put("node", node.into());
            put("port", port.into());
            put("value", value.into());
        }
        TraceEvent::Rerouted { node, port, dests } => {
            put("node", node.into());
            put("port", port.into());
            put("dests", dests.into());
        }
    }
    Value::Object(m)
}

/// Per-class streaming statistics of retired flows, as exported into
/// `flows.json` when the simulator ran with flow retirement on. The
/// sketches are the *only* record of the retired flows — their dense
/// state was freed mid-run — so the document carries everything needed
/// to rebuild them ([`retired_from_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RetiredClass {
    /// Class tag (index into the retire config's class list).
    pub class: u8,
    /// Class name.
    pub name: String,
    /// Flows retired into this class.
    pub count: u64,
    /// FCT sketch (nanoseconds).
    pub fct_ns: QuantileSketch,
    /// Transferred-bytes sketch.
    pub bytes: QuantileSketch,
    /// Per-flow retransmit-count sketch.
    pub retransmits: QuantileSketch,
    /// Slowdown sketch in thousandths (slowdown x 1000).
    pub slowdown_milli: QuantileSketch,
}

/// The retired-flow section of a streaming run's `flows.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetiredFlows {
    /// Relative-error bound of all sketches.
    pub alpha: f64,
    /// Total flows retired.
    pub total: u64,
    /// Flow-slab slots materialised (peak-RSS proxy: bounded by peak
    /// concurrency, not total flows).
    pub slab_capacity: u64,
    /// Peak simultaneously live flows.
    pub slab_peak: u64,
    /// Per-class statistics, indexed by class tag.
    pub classes: Vec<RetiredClass>,
}

/// The JSON form of one quantile sketch: exact bucket contents plus
/// convenience quantiles. Inverse of [`sketch_from_json`].
pub fn sketch_json(s: &QuantileSketch) -> Value {
    let q = |p: f64| Value::from(s.quantile(p).unwrap_or(0.0));
    let buckets: Vec<Value> = s
        .bucket_entries()
        .into_iter()
        .map(|(k, c)| Value::Array(vec![Value::from(i64::from(k)), Value::from(c)]))
        .collect();
    let mut m = Map::new();
    m.insert("count".into(), s.count().into());
    m.insert("zero".into(), s.zero_count().into());
    m.insert("sum".into(), s.sum().into());
    m.insert("min".into(), s.min().unwrap_or(0.0).into());
    m.insert("max".into(), s.max().unwrap_or(0.0).into());
    m.insert("p50".into(), q(0.50));
    m.insert("p90".into(), q(0.90));
    m.insert("p99".into(), q(0.99));
    m.insert("p999".into(), q(0.999));
    m.insert("buckets".into(), Value::Array(buckets));
    Value::Object(m)
}

/// Rebuilds a sketch from its [`sketch_json`] form.
pub fn sketch_from_json(v: &Value, alpha: f64) -> Result<QuantileSketch, String> {
    let num = |k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("sketch missing numeric '{k}'"))
    };
    let entries: Vec<(i32, u64)> = v
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or("sketch missing 'buckets'")?
        .iter()
        .map(|pair| {
            let p = pair.as_array().filter(|p| p.len() == 2).ok_or("bad bucket pair")?;
            let k = p[0].as_i64().ok_or("bad bucket key")? as i32;
            let c = p[1].as_i64().ok_or("bad bucket count")? as u64;
            Ok::<(i32, u64), String>((k, c))
        })
        .collect::<Result<_, _>>()?;
    Ok(QuantileSketch::from_parts(
        alpha,
        num("zero")? as u64,
        &entries,
        num("sum")?,
        num("min")?,
        num("max")?,
    ))
}

fn retired_class_json(c: &RetiredClass) -> Value {
    crate::json!({
        "class": u64::from(c.class),
        "name": c.name.as_str(),
        "count": c.count,
        "fct_ns": sketch_json(&c.fct_ns),
        "bytes": sketch_json(&c.bytes),
        "retransmits": sketch_json(&c.retransmits),
        "slowdown_milli": sketch_json(&c.slowdown_milli),
    })
}

/// Parses the retired-flow section back out of a `flows.json` document
/// in the `tfc-flows/v2` object form (inverse of the exporter; used by
/// `tfc-trace --flows`).
pub fn retired_from_json(doc: &Value) -> Result<RetiredFlows, String> {
    match doc.get("schema").and_then(Value::as_str) {
        Some("tfc-flows/v2") => {}
        other => return Err(format!("not a tfc-flows/v2 document (schema {other:?})")),
    }
    let num = |k: &str| -> Result<f64, String> {
        doc.get(k)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("flows.json missing numeric '{k}'"))
    };
    let alpha = num("alpha")?;
    let classes = doc
        .get("classes")
        .and_then(Value::as_array)
        .ok_or("flows.json missing 'classes'")?
        .iter()
        .map(|c| {
            let sketch = |k: &str| {
                sketch_from_json(c.get(k).ok_or_else(|| format!("class missing '{k}'"))?, alpha)
            };
            Ok::<RetiredClass, String>(RetiredClass {
                class: c.get("class").and_then(Value::as_i64).ok_or("class missing tag")? as u8,
                name: c
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("class missing name")?
                    .to_string(),
                count: c.get("count").and_then(Value::as_i64).ok_or("class missing count")? as u64,
                fct_ns: sketch("fct_ns")?,
                bytes: sketch("bytes")?,
                retransmits: sketch("retransmits")?,
                slowdown_milli: sketch("slowdown_milli")?,
            })
        })
        .collect::<Result<_, _>>()?;
    Ok(RetiredFlows {
        alpha,
        total: num("retired_total")? as u64,
        slab_capacity: num("slab_capacity")? as u64,
        slab_peak: num("slab_peak")? as u64,
        classes,
    })
}

fn flows_json(flows: &[FlowSummary], retired: Option<&RetiredFlows>) -> Value {
    let live = Value::Array(
        flows
            .iter()
            .map(|f| {
                crate::json!({
                    "flow": f.flow,
                    "src": f.src,
                    "dst": f.dst,
                    "bytes": f.bytes,
                    "delivered": f.delivered,
                    "retransmits": f.retransmits,
                    "timeouts": f.timeouts,
                    "started_ns": f.started_ns,
                    "established_ns": f.established_ns,
                    "receiver_done_ns": f.receiver_done_ns,
                    "sender_done_ns": f.sender_done_ns,
                })
            })
            .collect(),
    );
    // A run without retirement keeps the historical bare-array form, so
    // existing artifact sets stay byte-identical. Retirement upgrades
    // the document to an object: retired sketches plus the (few) flows
    // still live at export time.
    match retired {
        None => live,
        Some(r) => crate::json!({
            "schema": "tfc-flows/v2",
            "alpha": r.alpha,
            "retired_total": r.total,
            "slab_capacity": r.slab_capacity,
            "slab_peak": r.slab_peak,
            "classes": Value::Array(r.classes.iter().map(retired_class_json).collect()),
            "live": live,
        }),
    }
}

/// Column header of `tfc_slots.csv`.
pub const SLOTS_CSV_HEADER: &str =
    "at_ns,node,port,token_bytes,effective_flows,rho,window_bytes,rtt_b_ns,rtt_m_ns,held_acks,delayed_total";

fn slots_csv(slots: &[PortSlotSample]) -> String {
    let mut out = String::with_capacity(64 * (slots.len() + 1));
    out.push_str(SLOTS_CSV_HEADER);
    out.push('\n');
    for s in slots {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            s.at_ns,
            s.node,
            s.port,
            s.token_bytes,
            s.effective_flows,
            s.rho,
            s.window_bytes,
            s.rtt_b_ns,
            s.rtt_m_ns,
            s.held_acks,
            s.delayed_total
        );
    }
    out
}

/// Parses one `tfc_slots.csv` body back into samples (inverse of the
/// exporter; used by `tfc-trace`).
pub fn parse_slots_csv(text: &str) -> Result<Vec<PortSlotSample>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == SLOTS_CSV_HEADER => {}
        other => return Err(format!("bad tfc_slots.csv header: {other:?}")),
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 11 {
            return Err(format!("row {}: expected 11 fields, got {}", i + 2, f.len()));
        }
        let num =
            |j: usize| -> Result<f64, String> { f[j].parse().map_err(|e| format!("row {}: {e}", i + 2)) };
        let int =
            |j: usize| -> Result<u64, String> { f[j].parse().map_err(|e| format!("row {}: {e}", i + 2)) };
        out.push(PortSlotSample {
            at_ns: int(0)?,
            node: int(1)? as u32,
            port: int(2)? as u16,
            token_bytes: num(3)?,
            effective_flows: num(4)?,
            rho: num(5)?,
            window_bytes: int(6)?,
            rtt_b_ns: int(7)?,
            rtt_m_ns: int(8)?,
            held_acks: int(9)?,
            delayed_total: int(10)?,
        });
    }
    Ok(out)
}

/// Writes just `results/<manifest.run>/manifest.json` — for runs whose
/// outputs live elsewhere (e.g. figure dumps) but should still record
/// how they were produced. Returns the directory path.
pub fn write_manifest(manifest: &RunManifest) -> io::Result<PathBuf> {
    let dir = results_dir().join(&manifest.run);
    fs::create_dir_all(&dir)?;
    fs::write(dir.join("manifest.json"), manifest_json(manifest).pretty())?;
    Ok(dir)
}

/// Column header of `traces.csv` (flattened legacy named time series).
pub const TRACES_CSV_HEADER: &str = "series,at_ns,value";

fn traces_csv(series: &[(&str, &[(u64, f64)])]) -> String {
    let mut out = String::from(TRACES_CSV_HEADER);
    out.push('\n');
    for (name, points) in series {
        for (at_ns, value) in *points {
            let _ = writeln!(out, "{name},{at_ns},{value}");
        }
    }
    out
}

/// Writes the full artifact set under `results/<manifest.run>/` and
/// returns the directory path.
///
/// `spans.json` is written only when span tracing is enabled and
/// `traces.csv` only when legacy series exist, so a `TraceConfig::Off`
/// run without samplers produces exactly the historical five files.
pub fn export_run(
    manifest: &RunManifest,
    log: &EventLog,
    loop_stats: &LoopStats,
    slots: &[PortSlotSample],
    flows: &[FlowSummary],
    retired: Option<&RetiredFlows>,
    spans: &SpanTracker,
    series: &[(&str, &[(u64, f64)])],
) -> io::Result<PathBuf> {
    let dir = write_manifest(manifest)?;
    fs::write(dir.join("counters.json"), counters_json(log, loop_stats).pretty())?;
    let events = Value::Array(log.records().iter().map(record_json).collect());
    fs::write(dir.join("events.json"), events.pretty())?;
    fs::write(dir.join("flows.json"), flows_json(flows, retired).pretty())?;
    fs::write(dir.join("tfc_slots.csv"), slots_csv(slots))?;
    if spans.enabled() {
        fs::write(dir.join("spans.json"), spans.to_json().pretty())?;
    }
    if !series.is_empty() {
        fs::write(dir.join("traces.csv"), traces_csv(series))?;
    }
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogMode;
    use crate::json;

    const NAMES: [&str; 2] = ["arrival", "tx_done"];

    fn sample() -> PortSlotSample {
        PortSlotSample {
            at_ns: 123,
            node: 2,
            port: 1,
            token_bytes: 18_000.5,
            effective_flows: 3.25,
            rho: 0.97,
            window_bytes: 5_840,
            rtt_b_ns: 160_000,
            rtt_m_ns: 170_500,
            held_acks: 2,
            delayed_total: 9,
        }
    }

    #[test]
    fn slots_csv_roundtrips() {
        let slots = vec![sample(), PortSlotSample { at_ns: 456, ..sample() }];
        let csv = slots_csv(&slots);
        assert!(csv.starts_with(SLOTS_CSV_HEADER));
        assert_eq!(parse_slots_csv(&csv).unwrap(), slots);
        assert!(parse_slots_csv("nope\n1,2").is_err());
    }

    #[test]
    fn export_writes_all_artifacts() {
        let dir = std::env::temp_dir().join("tfc_telemetry_export_test");
        std::fs::remove_dir_all(&dir).ok();
        std::env::set_var("TFC_RESULTS_DIR", &dir);
        let mut log = EventLog::new(LogMode::Full, 1, 1);
        log.record(
            10,
            TraceEvent::PktDrop {
                node: 2,
                port: 0,
                flow: 7,
                seq: 1460,
                bytes: 1500,
            },
        );
        log.record(20, TraceEvent::FlowRetransmit { flow: 7 });
        let mut stats = LoopStats::new(&NAMES, true);
        stats.count(0);
        stats.add_nanos(0, 55);
        let flows = vec![FlowSummary {
            flow: 7,
            src: 0,
            dst: 1,
            bytes: 14_600,
            delivered: 14_600,
            retransmits: 1,
            timeouts: 0,
            started_ns: 0,
            established_ns: Some(5),
            receiver_done_ns: Some(99),
            sender_done_ns: None,
        }];
        let manifest = RunManifest {
            run: "unit".into(),
            seed: 3,
            topology: "star(2)".into(),
            config: "Cfg { x: 1 }".into(),
            git: "deadbeef".into(),
            sim: Some(SimMeta {
                scheduler: "Wheel".into(),
                coalesce: true,
                trace: "full".into(),
            }),
        };
        let mut spans = SpanTracker::new(crate::TraceConfig::Full);
        spans.on_enqueue(1, 7, true, true, 0);
        spans.on_dequeue(1, 7, 50);
        spans.on_deliver(1, 7, 0, 120);
        let points: &[(u64, f64)] = &[(10, 0.5), (20, 0.75)];
        let out = export_run(
            &manifest,
            &log,
            &stats,
            &[sample()],
            &flows,
            None,
            &spans,
            &[("sw1.p0.rho", points)],
        )
        .unwrap();
        for f in [
            "manifest.json",
            "counters.json",
            "events.json",
            "flows.json",
            "tfc_slots.csv",
            "spans.json",
            "traces.csv",
        ] {
            assert!(out.join(f).exists(), "{f} missing");
        }
        // Everything JSON parses back, and key fields survive.
        let m = json::parse(&std::fs::read_to_string(out.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(m.get("seed").unwrap().as_i64(), Some(3));
        let sim = m.get("sim").unwrap();
        assert_eq!(sim.get("scheduler").unwrap().as_str(), Some("Wheel"));
        assert_eq!(sim.get("coalesce").unwrap().as_bool(), Some(true));
        assert_eq!(sim.get("trace").unwrap().as_str(), Some("full"));
        let sp = json::parse(&std::fs::read_to_string(out.join("spans.json")).unwrap()).unwrap();
        assert_eq!(sp.get("tracked_packets").unwrap().as_i64(), Some(1));
        let tr = std::fs::read_to_string(out.join("traces.csv")).unwrap();
        assert!(tr.starts_with(TRACES_CSV_HEADER));
        assert!(tr.contains("sw1.p0.rho,10,0.5"));
        let c = json::parse(&std::fs::read_to_string(out.join("counters.json")).unwrap()).unwrap();
        assert_eq!(
            c.get("events").unwrap().get("pkt_drop").unwrap().as_i64(),
            Some(1)
        );
        let e = json::parse(&std::fs::read_to_string(out.join("events.json")).unwrap()).unwrap();
        let recs = e.as_array().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].get("kind").unwrap().as_str(), Some("pkt_drop"));
        assert_eq!(recs[1].get("flow").unwrap().as_i64(), Some(7));
        let fl = json::parse(&std::fs::read_to_string(out.join("flows.json")).unwrap()).unwrap();
        assert_eq!(
            fl.as_array().unwrap()[0].get("delivered").unwrap().as_i64(),
            Some(14_600)
        );
        // An untraced run exports exactly the historical five files.
        let off = RunManifest { run: "unit-off".into(), sim: None, ..manifest };
        let out_off = export_run(
            &off,
            &log,
            &stats,
            &[sample()],
            &flows,
            None,
            &SpanTracker::new(crate::TraceConfig::Off),
            &[],
        )
        .unwrap();
        assert!(!out_off.join("spans.json").exists());
        assert!(!out_off.join("traces.csv").exists());
        let m_off =
            json::parse(&std::fs::read_to_string(out_off.join("manifest.json")).unwrap()).unwrap();
        assert!(m_off.get("sim").is_none());
        std::fs::remove_dir_all(&dir).ok();
        std::env::remove_var("TFC_RESULTS_DIR");
    }

    #[test]
    fn retired_flows_json_roundtrips() {
        let mut fct = QuantileSketch::new(0.01);
        let mut bytes = QuantileSketch::new(0.01);
        let mut rtx = QuantileSketch::new(0.01);
        let mut slow = QuantileSketch::new(0.01);
        for i in 1..=500u64 {
            fct.record(i as f64 * 1_000.0);
            bytes.record(600.0 + i as f64);
            rtx.record((i % 3) as f64);
            slow.record(1_000.0 + i as f64);
        }
        let retired = RetiredFlows {
            alpha: 0.01,
            total: 500,
            slab_capacity: 32,
            slab_peak: 30,
            classes: vec![RetiredClass {
                class: 0,
                name: "web-search".into(),
                count: 500,
                fct_ns: fct,
                bytes,
                retransmits: rtx,
                slowdown_milli: slow,
            }],
        };
        let doc = flows_json(&[], Some(&retired));
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("tfc-flows/v2"));
        assert!(doc.get("live").unwrap().as_array().unwrap().is_empty());
        let back = retired_from_json(&doc).unwrap();
        assert_eq!(back, retired, "sketches must survive the JSON roundtrip");
        // The bare-array legacy form is rejected, not misparsed.
        assert!(retired_from_json(&flows_json(&[], None)).is_err());
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }
}
