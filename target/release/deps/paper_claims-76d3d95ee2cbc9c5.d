/root/repo/target/release/deps/paper_claims-76d3d95ee2cbc9c5.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-76d3d95ee2cbc9c5: tests/paper_claims.rs

tests/paper_claims.rs:
