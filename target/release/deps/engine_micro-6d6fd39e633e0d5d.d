/root/repo/target/release/deps/engine_micro-6d6fd39e633e0d5d.d: crates/bench/benches/engine_micro.rs

/root/repo/target/release/deps/engine_micro-6d6fd39e633e0d5d: crates/bench/benches/engine_micro.rs

crates/bench/benches/engine_micro.rs:
