/root/repo/target/release/deps/rng-7e065d8d26e16968.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/release/deps/rng-7e065d8d26e16968: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
