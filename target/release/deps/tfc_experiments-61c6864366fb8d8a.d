/root/repo/target/release/deps/tfc_experiments-61c6864366fb8d8a.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

/root/repo/target/release/deps/libtfc_experiments-61c6864366fb8d8a.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

/root/repo/target/release/deps/libtfc_experiments-61c6864366fb8d8a.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/benchmark.rs:
crates/experiments/src/goodput.rs:
crates/experiments/src/incast.rs:
crates/experiments/src/ne.rs:
crates/experiments/src/proto.rs:
crates/experiments/src/rho.rs:
crates/experiments/src/rttb.rs:
crates/experiments/src/sweeps.rs:
crates/experiments/src/util.rs:
crates/experiments/src/workconserving.rs:
