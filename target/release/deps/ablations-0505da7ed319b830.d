/root/repo/target/release/deps/ablations-0505da7ed319b830.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-0505da7ed319b830: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
