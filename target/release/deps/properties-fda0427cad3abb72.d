/root/repo/target/release/deps/properties-fda0427cad3abb72.d: tests/properties.rs

/root/repo/target/release/deps/properties-fda0427cad3abb72: tests/properties.rs

tests/properties.rs:
