/root/repo/target/release/deps/rng-1487762e53b2ec4f.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/release/deps/librng-1487762e53b2ec4f.rlib: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/release/deps/librng-1487762e53b2ec4f.rmeta: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
