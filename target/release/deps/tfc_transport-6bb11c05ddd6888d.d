/root/repo/target/release/deps/tfc_transport-6bb11c05ddd6888d.d: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/libtfc_transport-6bb11c05ddd6888d.rlib: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/libtfc_transport-6bb11c05ddd6888d.rmeta: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/recv.rs:
crates/transport/src/rtt.rs:
crates/transport/src/stack.rs:
crates/transport/src/tcp.rs:
