/root/repo/target/release/deps/rng-82e9c262d9469054.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/release/deps/rng-82e9c262d9469054: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
