/root/repo/target/release/deps/figures-111c05e43ecd3f05.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-111c05e43ecd3f05: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
