/root/repo/target/release/deps/tfc_transport-08644516fc3bd43a.d: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/tfc_transport-08644516fc3bd43a: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/recv.rs:
crates/transport/src/rtt.rs:
crates/transport/src/stack.rs:
crates/transport/src/tcp.rs:
