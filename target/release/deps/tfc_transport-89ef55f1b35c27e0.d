/root/repo/target/release/deps/tfc_transport-89ef55f1b35c27e0.d: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/tfc_transport-89ef55f1b35c27e0: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/recv.rs:
crates/transport/src/rtt.rs:
crates/transport/src/stack.rs:
crates/transport/src/tcp.rs:
