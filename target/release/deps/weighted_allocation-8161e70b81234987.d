/root/repo/target/release/deps/weighted_allocation-8161e70b81234987.d: tests/weighted_allocation.rs

/root/repo/target/release/deps/weighted_allocation-8161e70b81234987: tests/weighted_allocation.rs

tests/weighted_allocation.rs:
