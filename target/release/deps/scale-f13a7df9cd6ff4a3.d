/root/repo/target/release/deps/scale-f13a7df9cd6ff4a3.d: tests/scale.rs

/root/repo/target/release/deps/scale-f13a7df9cd6ff4a3: tests/scale.rs

tests/scale.rs:
