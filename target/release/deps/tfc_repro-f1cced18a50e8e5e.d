/root/repo/target/release/deps/tfc_repro-f1cced18a50e8e5e.d: src/lib.rs

/root/repo/target/release/deps/tfc_repro-f1cced18a50e8e5e: src/lib.rs

src/lib.rs:
