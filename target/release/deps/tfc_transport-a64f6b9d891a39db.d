/root/repo/target/release/deps/tfc_transport-a64f6b9d891a39db.d: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/libtfc_transport-a64f6b9d891a39db.rlib: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/release/deps/libtfc_transport-a64f6b9d891a39db.rmeta: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/recv.rs:
crates/transport/src/rtt.rs:
crates/transport/src/stack.rs:
crates/transport/src/tcp.rs:
