/root/repo/target/release/deps/figures-bf65d02e5f3535b8.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-bf65d02e5f3535b8: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
