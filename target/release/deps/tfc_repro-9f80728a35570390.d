/root/repo/target/release/deps/tfc_repro-9f80728a35570390.d: src/lib.rs

/root/repo/target/release/deps/tfc_repro-9f80728a35570390: src/lib.rs

src/lib.rs:
