/root/repo/target/release/deps/properties-9dee28c4a2a12cdc.d: tests/properties.rs

/root/repo/target/release/deps/properties-9dee28c4a2a12cdc: tests/properties.rs

tests/properties.rs:
