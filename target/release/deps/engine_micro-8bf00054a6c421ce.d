/root/repo/target/release/deps/engine_micro-8bf00054a6c421ce.d: crates/bench/benches/engine_micro.rs

/root/repo/target/release/deps/engine_micro-8bf00054a6c421ce: crates/bench/benches/engine_micro.rs

crates/bench/benches/engine_micro.rs:
