/root/repo/target/release/deps/tfc_simnet-85e6dc9f71862357.d: crates/simnet/src/lib.rs crates/simnet/src/app.rs crates/simnet/src/endpoint.rs crates/simnet/src/event.rs crates/simnet/src/node.rs crates/simnet/src/packet.rs crates/simnet/src/policy.rs crates/simnet/src/queue.rs crates/simnet/src/sim.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs crates/simnet/src/units.rs

/root/repo/target/release/deps/libtfc_simnet-85e6dc9f71862357.rlib: crates/simnet/src/lib.rs crates/simnet/src/app.rs crates/simnet/src/endpoint.rs crates/simnet/src/event.rs crates/simnet/src/node.rs crates/simnet/src/packet.rs crates/simnet/src/policy.rs crates/simnet/src/queue.rs crates/simnet/src/sim.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs crates/simnet/src/units.rs

/root/repo/target/release/deps/libtfc_simnet-85e6dc9f71862357.rmeta: crates/simnet/src/lib.rs crates/simnet/src/app.rs crates/simnet/src/endpoint.rs crates/simnet/src/event.rs crates/simnet/src/node.rs crates/simnet/src/packet.rs crates/simnet/src/policy.rs crates/simnet/src/queue.rs crates/simnet/src/sim.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs crates/simnet/src/units.rs

crates/simnet/src/lib.rs:
crates/simnet/src/app.rs:
crates/simnet/src/endpoint.rs:
crates/simnet/src/event.rs:
crates/simnet/src/node.rs:
crates/simnet/src/packet.rs:
crates/simnet/src/policy.rs:
crates/simnet/src/queue.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/units.rs:
