/root/repo/target/release/deps/tfc_workloads-d708bb099f91698a.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/release/deps/libtfc_workloads-d708bb099f91698a.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/release/deps/libtfc_workloads-d708bb099f91698a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/incast.rs:
crates/workloads/src/onoff.rs:
crates/workloads/src/shuffle.rs:
