/root/repo/target/release/deps/tfc_metrics-c6e2c9f4cead2c0d.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libtfc_metrics-c6e2c9f4cead2c0d.rlib: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/libtfc_metrics-c6e2c9f4cead2c0d.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/ewma.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/percentile.rs:
crates/metrics/src/rate.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
