/root/repo/target/release/deps/paper_figures-78c81afa10bd2308.d: crates/bench/benches/paper_figures.rs

/root/repo/target/release/deps/paper_figures-78c81afa10bd2308: crates/bench/benches/paper_figures.rs

crates/bench/benches/paper_figures.rs:
