/root/repo/target/release/deps/tfc_bench-de28c80cf4bc26f0.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/release/deps/libtfc_bench-de28c80cf4bc26f0.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/release/deps/libtfc_bench-de28c80cf4bc26f0.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
