/root/repo/target/release/deps/paper_claims-cc9a8676ee32a80c.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-cc9a8676ee32a80c: tests/paper_claims.rs

tests/paper_claims.rs:
