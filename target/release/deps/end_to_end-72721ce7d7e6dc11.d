/root/repo/target/release/deps/end_to_end-72721ce7d7e6dc11.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-72721ce7d7e6dc11: tests/end_to_end.rs

tests/end_to_end.rs:
