/root/repo/target/release/deps/scale-a570fcad38ca9ff4.d: tests/scale.rs

/root/repo/target/release/deps/scale-a570fcad38ca9ff4: tests/scale.rs

tests/scale.rs:
