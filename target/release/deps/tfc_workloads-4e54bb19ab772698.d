/root/repo/target/release/deps/tfc_workloads-4e54bb19ab772698.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/release/deps/tfc_workloads-4e54bb19ab772698: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/incast.rs:
crates/workloads/src/onoff.rs:
crates/workloads/src/shuffle.rs:
