/root/repo/target/release/deps/tfc_bench-2321d0a7f9f96a39.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/release/deps/libtfc_bench-2321d0a7f9f96a39.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/release/deps/libtfc_bench-2321d0a7f9f96a39.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
