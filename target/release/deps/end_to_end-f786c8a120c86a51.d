/root/repo/target/release/deps/end_to_end-f786c8a120c86a51.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-f786c8a120c86a51: tests/end_to_end.rs

tests/end_to_end.rs:
