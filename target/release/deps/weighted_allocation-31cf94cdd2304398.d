/root/repo/target/release/deps/weighted_allocation-31cf94cdd2304398.d: tests/weighted_allocation.rs

/root/repo/target/release/deps/weighted_allocation-31cf94cdd2304398: tests/weighted_allocation.rs

tests/weighted_allocation.rs:
