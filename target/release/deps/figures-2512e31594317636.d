/root/repo/target/release/deps/figures-2512e31594317636.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-2512e31594317636: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
