/root/repo/target/release/deps/tfc_repro-f91422e6a57364d1.d: src/lib.rs

/root/repo/target/release/deps/libtfc_repro-f91422e6a57364d1.rlib: src/lib.rs

/root/repo/target/release/deps/libtfc_repro-f91422e6a57364d1.rmeta: src/lib.rs

src/lib.rs:
