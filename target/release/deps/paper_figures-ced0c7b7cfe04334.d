/root/repo/target/release/deps/paper_figures-ced0c7b7cfe04334.d: crates/bench/benches/paper_figures.rs

/root/repo/target/release/deps/paper_figures-ced0c7b7cfe04334: crates/bench/benches/paper_figures.rs

crates/bench/benches/paper_figures.rs:
