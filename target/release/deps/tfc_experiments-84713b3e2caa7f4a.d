/root/repo/target/release/deps/tfc_experiments-84713b3e2caa7f4a.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

/root/repo/target/release/deps/tfc_experiments-84713b3e2caa7f4a: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/benchmark.rs:
crates/experiments/src/goodput.rs:
crates/experiments/src/incast.rs:
crates/experiments/src/ne.rs:
crates/experiments/src/proto.rs:
crates/experiments/src/rho.rs:
crates/experiments/src/rttb.rs:
crates/experiments/src/sweeps.rs:
crates/experiments/src/util.rs:
crates/experiments/src/workconserving.rs:
