/root/repo/target/release/deps/figures-307b6e3b7499437b.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-307b6e3b7499437b: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
