/root/repo/target/release/deps/reliability-a7a8de53897d9c91.d: tests/reliability.rs

/root/repo/target/release/deps/reliability-a7a8de53897d9c91: tests/reliability.rs

tests/reliability.rs:
