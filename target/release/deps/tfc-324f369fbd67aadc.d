/root/repo/target/release/deps/tfc-324f369fbd67aadc.d: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/release/deps/tfc-324f369fbd67aadc: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

crates/core/src/lib.rs:
crates/core/src/arbiter.rs:
crates/core/src/config.rs:
crates/core/src/port.rs:
crates/core/src/sender.rs:
crates/core/src/stack.rs:
crates/core/src/switch.rs:
