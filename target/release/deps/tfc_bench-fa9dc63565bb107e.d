/root/repo/target/release/deps/tfc_bench-fa9dc63565bb107e.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/release/deps/tfc_bench-fa9dc63565bb107e: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
