/root/repo/target/release/deps/tfc-34518235c6f6a011.d: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/release/deps/libtfc-34518235c6f6a011.rlib: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/release/deps/libtfc-34518235c6f6a011.rmeta: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

crates/core/src/lib.rs:
crates/core/src/arbiter.rs:
crates/core/src/config.rs:
crates/core/src/port.rs:
crates/core/src/sender.rs:
crates/core/src/stack.rs:
crates/core/src/switch.rs:
