/root/repo/target/release/deps/ablations-be6196c40562221d.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-be6196c40562221d: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
