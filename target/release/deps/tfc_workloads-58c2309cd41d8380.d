/root/repo/target/release/deps/tfc_workloads-58c2309cd41d8380.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/release/deps/tfc_workloads-58c2309cd41d8380: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/incast.rs:
crates/workloads/src/onoff.rs:
crates/workloads/src/shuffle.rs:
