/root/repo/target/release/deps/tfc_bench-be437341306b4c5a.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/release/deps/tfc_bench-be437341306b4c5a: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
