/root/repo/target/release/deps/reliability-dd7de60ba220216a.d: tests/reliability.rs

/root/repo/target/release/deps/reliability-dd7de60ba220216a: tests/reliability.rs

tests/reliability.rs:
