/root/repo/target/release/deps/tfc_repro-1d28795d75665d54.d: src/lib.rs

/root/repo/target/release/deps/libtfc_repro-1d28795d75665d54.rlib: src/lib.rs

/root/repo/target/release/deps/libtfc_repro-1d28795d75665d54.rmeta: src/lib.rs

src/lib.rs:
