/root/repo/target/release/deps/rng-21cc485eec1d2ead.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/release/deps/librng-21cc485eec1d2ead.rlib: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/release/deps/librng-21cc485eec1d2ead.rmeta: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
