/root/repo/target/release/deps/tfc_metrics-6aa211b7ded186ce.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/release/deps/tfc_metrics-6aa211b7ded186ce: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/ewma.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/percentile.rs:
crates/metrics/src/rate.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
