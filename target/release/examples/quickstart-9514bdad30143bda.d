/root/repo/target/release/examples/quickstart-9514bdad30143bda.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9514bdad30143bda: examples/quickstart.rs

examples/quickstart.rs:
