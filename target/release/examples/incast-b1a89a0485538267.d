/root/repo/target/release/examples/incast-b1a89a0485538267.d: examples/incast.rs

/root/repo/target/release/examples/incast-b1a89a0485538267: examples/incast.rs

examples/incast.rs:
