/root/repo/target/release/examples/weighted_shuffle-d5a46c01ba45ebb0.d: examples/weighted_shuffle.rs

/root/repo/target/release/examples/weighted_shuffle-d5a46c01ba45ebb0: examples/weighted_shuffle.rs

examples/weighted_shuffle.rs:
