/root/repo/target/release/examples/storm_onoff-601d5b15d1bb3876.d: examples/storm_onoff.rs

/root/repo/target/release/examples/storm_onoff-601d5b15d1bb3876: examples/storm_onoff.rs

examples/storm_onoff.rs:
