/root/repo/target/release/examples/quickstart-2fa618219754afc6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2fa618219754afc6: examples/quickstart.rs

examples/quickstart.rs:
