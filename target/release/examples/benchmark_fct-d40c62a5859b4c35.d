/root/repo/target/release/examples/benchmark_fct-d40c62a5859b4c35.d: examples/benchmark_fct.rs

/root/repo/target/release/examples/benchmark_fct-d40c62a5859b4c35: examples/benchmark_fct.rs

examples/benchmark_fct.rs:
