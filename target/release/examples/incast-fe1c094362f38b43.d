/root/repo/target/release/examples/incast-fe1c094362f38b43.d: examples/incast.rs

/root/repo/target/release/examples/incast-fe1c094362f38b43: examples/incast.rs

examples/incast.rs:
