/root/repo/target/release/examples/weighted_shuffle-91570e30947b81d4.d: examples/weighted_shuffle.rs

/root/repo/target/release/examples/weighted_shuffle-91570e30947b81d4: examples/weighted_shuffle.rs

examples/weighted_shuffle.rs:
