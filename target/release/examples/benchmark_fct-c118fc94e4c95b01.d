/root/repo/target/release/examples/benchmark_fct-c118fc94e4c95b01.d: examples/benchmark_fct.rs

/root/repo/target/release/examples/benchmark_fct-c118fc94e4c95b01: examples/benchmark_fct.rs

examples/benchmark_fct.rs:
