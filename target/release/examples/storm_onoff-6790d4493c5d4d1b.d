/root/repo/target/release/examples/storm_onoff-6790d4493c5d4d1b.d: examples/storm_onoff.rs

/root/repo/target/release/examples/storm_onoff-6790d4493c5d4d1b: examples/storm_onoff.rs

examples/storm_onoff.rs:
