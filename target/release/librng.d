/root/repo/target/release/librng.rlib: /root/repo/crates/rng/src/lib.rs /root/repo/crates/rng/src/props.rs /root/repo/crates/rng/src/seq.rs
