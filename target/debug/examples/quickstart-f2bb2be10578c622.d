/root/repo/target/debug/examples/quickstart-f2bb2be10578c622.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f2bb2be10578c622: examples/quickstart.rs

examples/quickstart.rs:
