/root/repo/target/debug/examples/incast-c34deb7101bdc74b.d: examples/incast.rs

/root/repo/target/debug/examples/incast-c34deb7101bdc74b: examples/incast.rs

examples/incast.rs:
