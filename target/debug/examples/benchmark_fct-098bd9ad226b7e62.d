/root/repo/target/debug/examples/benchmark_fct-098bd9ad226b7e62.d: examples/benchmark_fct.rs

/root/repo/target/debug/examples/benchmark_fct-098bd9ad226b7e62: examples/benchmark_fct.rs

examples/benchmark_fct.rs:
