/root/repo/target/debug/examples/storm_onoff-87280de3819bc5d7.d: examples/storm_onoff.rs

/root/repo/target/debug/examples/storm_onoff-87280de3819bc5d7: examples/storm_onoff.rs

examples/storm_onoff.rs:
