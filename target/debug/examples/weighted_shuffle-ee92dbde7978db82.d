/root/repo/target/debug/examples/weighted_shuffle-ee92dbde7978db82.d: examples/weighted_shuffle.rs

/root/repo/target/debug/examples/weighted_shuffle-ee92dbde7978db82: examples/weighted_shuffle.rs

examples/weighted_shuffle.rs:
