/root/repo/target/debug/examples/quickstart-e0642a677d509c7f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e0642a677d509c7f: examples/quickstart.rs

examples/quickstart.rs:
