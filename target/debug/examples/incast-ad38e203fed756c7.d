/root/repo/target/debug/examples/incast-ad38e203fed756c7.d: examples/incast.rs

/root/repo/target/debug/examples/incast-ad38e203fed756c7: examples/incast.rs

examples/incast.rs:
