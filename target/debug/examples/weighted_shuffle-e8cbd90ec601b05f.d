/root/repo/target/debug/examples/weighted_shuffle-e8cbd90ec601b05f.d: examples/weighted_shuffle.rs

/root/repo/target/debug/examples/weighted_shuffle-e8cbd90ec601b05f: examples/weighted_shuffle.rs

examples/weighted_shuffle.rs:
