/root/repo/target/debug/examples/benchmark_fct-75ed9595307f8547.d: examples/benchmark_fct.rs

/root/repo/target/debug/examples/benchmark_fct-75ed9595307f8547: examples/benchmark_fct.rs

examples/benchmark_fct.rs:
