/root/repo/target/debug/examples/storm_onoff-14ad9a22a5ffd9bb.d: examples/storm_onoff.rs

/root/repo/target/debug/examples/storm_onoff-14ad9a22a5ffd9bb: examples/storm_onoff.rs

examples/storm_onoff.rs:
