/root/repo/target/debug/deps/rng-322ad93d36216c01.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/debug/deps/rng-322ad93d36216c01: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
