/root/repo/target/debug/deps/tfc-9f5ce77a1465de04.d: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/debug/deps/tfc-9f5ce77a1465de04: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

crates/core/src/lib.rs:
crates/core/src/arbiter.rs:
crates/core/src/config.rs:
crates/core/src/port.rs:
crates/core/src/sender.rs:
crates/core/src/stack.rs:
crates/core/src/switch.rs:
