/root/repo/target/debug/deps/tfc_metrics-59dd1b044e01f345.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libtfc_metrics-59dd1b044e01f345.rlib: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libtfc_metrics-59dd1b044e01f345.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/ewma.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/percentile.rs:
crates/metrics/src/rate.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
