/root/repo/target/debug/deps/figures-e9d4c137af4b0f5e.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-e9d4c137af4b0f5e: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
