/root/repo/target/debug/deps/tfc_simnet-4e00f6f0fc52189a.d: crates/simnet/src/lib.rs crates/simnet/src/app.rs crates/simnet/src/endpoint.rs crates/simnet/src/event.rs crates/simnet/src/node.rs crates/simnet/src/packet.rs crates/simnet/src/policy.rs crates/simnet/src/queue.rs crates/simnet/src/sim.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs crates/simnet/src/units.rs

/root/repo/target/debug/deps/libtfc_simnet-4e00f6f0fc52189a.rlib: crates/simnet/src/lib.rs crates/simnet/src/app.rs crates/simnet/src/endpoint.rs crates/simnet/src/event.rs crates/simnet/src/node.rs crates/simnet/src/packet.rs crates/simnet/src/policy.rs crates/simnet/src/queue.rs crates/simnet/src/sim.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs crates/simnet/src/units.rs

/root/repo/target/debug/deps/libtfc_simnet-4e00f6f0fc52189a.rmeta: crates/simnet/src/lib.rs crates/simnet/src/app.rs crates/simnet/src/endpoint.rs crates/simnet/src/event.rs crates/simnet/src/node.rs crates/simnet/src/packet.rs crates/simnet/src/policy.rs crates/simnet/src/queue.rs crates/simnet/src/sim.rs crates/simnet/src/topology.rs crates/simnet/src/trace.rs crates/simnet/src/units.rs

crates/simnet/src/lib.rs:
crates/simnet/src/app.rs:
crates/simnet/src/endpoint.rs:
crates/simnet/src/event.rs:
crates/simnet/src/node.rs:
crates/simnet/src/packet.rs:
crates/simnet/src/policy.rs:
crates/simnet/src/queue.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/topology.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/units.rs:
