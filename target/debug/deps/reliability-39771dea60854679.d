/root/repo/target/debug/deps/reliability-39771dea60854679.d: tests/reliability.rs

/root/repo/target/debug/deps/reliability-39771dea60854679: tests/reliability.rs

tests/reliability.rs:
