/root/repo/target/debug/deps/properties-f46090e6ad56c2fa.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f46090e6ad56c2fa: tests/properties.rs

tests/properties.rs:
