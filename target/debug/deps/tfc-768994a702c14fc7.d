/root/repo/target/debug/deps/tfc-768994a702c14fc7.d: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/debug/deps/tfc-768994a702c14fc7: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

crates/core/src/lib.rs:
crates/core/src/arbiter.rs:
crates/core/src/config.rs:
crates/core/src/port.rs:
crates/core/src/sender.rs:
crates/core/src/stack.rs:
crates/core/src/switch.rs:
