/root/repo/target/debug/deps/rng-8da5cbe6de496663.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/debug/deps/librng-8da5cbe6de496663.rlib: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/debug/deps/librng-8da5cbe6de496663.rmeta: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
