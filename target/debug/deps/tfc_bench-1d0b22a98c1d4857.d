/root/repo/target/debug/deps/tfc_bench-1d0b22a98c1d4857.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/libtfc_bench-1d0b22a98c1d4857.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/libtfc_bench-1d0b22a98c1d4857.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
