/root/repo/target/debug/deps/weighted_allocation-61f2b78d6a2c3576.d: tests/weighted_allocation.rs

/root/repo/target/debug/deps/weighted_allocation-61f2b78d6a2c3576: tests/weighted_allocation.rs

tests/weighted_allocation.rs:
