/root/repo/target/debug/deps/paper_claims-7a5677a5914b0b4b.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-7a5677a5914b0b4b: tests/paper_claims.rs

tests/paper_claims.rs:
