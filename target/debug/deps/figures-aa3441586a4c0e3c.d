/root/repo/target/debug/deps/figures-aa3441586a4c0e3c.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-aa3441586a4c0e3c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
