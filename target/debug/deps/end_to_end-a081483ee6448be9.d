/root/repo/target/debug/deps/end_to_end-a081483ee6448be9.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a081483ee6448be9: tests/end_to_end.rs

tests/end_to_end.rs:
