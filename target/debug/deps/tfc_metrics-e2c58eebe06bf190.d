/root/repo/target/debug/deps/tfc_metrics-e2c58eebe06bf190.d: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libtfc_metrics-e2c58eebe06bf190.rlib: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

/root/repo/target/debug/deps/libtfc_metrics-e2c58eebe06bf190.rmeta: crates/metrics/src/lib.rs crates/metrics/src/cdf.rs crates/metrics/src/ewma.rs crates/metrics/src/fct.rs crates/metrics/src/histogram.rs crates/metrics/src/percentile.rs crates/metrics/src/rate.rs crates/metrics/src/summary.rs crates/metrics/src/timeseries.rs

crates/metrics/src/lib.rs:
crates/metrics/src/cdf.rs:
crates/metrics/src/ewma.rs:
crates/metrics/src/fct.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/percentile.rs:
crates/metrics/src/rate.rs:
crates/metrics/src/summary.rs:
crates/metrics/src/timeseries.rs:
