/root/repo/target/debug/deps/tfc_transport-dec70da3c09dbba9.d: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/tfc_transport-dec70da3c09dbba9: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/recv.rs:
crates/transport/src/rtt.rs:
crates/transport/src/stack.rs:
crates/transport/src/tcp.rs:
