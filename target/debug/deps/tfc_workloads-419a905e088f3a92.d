/root/repo/target/debug/deps/tfc_workloads-419a905e088f3a92.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/debug/deps/libtfc_workloads-419a905e088f3a92.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/debug/deps/libtfc_workloads-419a905e088f3a92.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/incast.rs:
crates/workloads/src/onoff.rs:
crates/workloads/src/shuffle.rs:
