/root/repo/target/debug/deps/scale-c6aae215798aa0a7.d: tests/scale.rs

/root/repo/target/debug/deps/scale-c6aae215798aa0a7: tests/scale.rs

tests/scale.rs:
