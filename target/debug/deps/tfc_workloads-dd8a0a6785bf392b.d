/root/repo/target/debug/deps/tfc_workloads-dd8a0a6785bf392b.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/debug/deps/libtfc_workloads-dd8a0a6785bf392b.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/debug/deps/libtfc_workloads-dd8a0a6785bf392b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/incast.rs:
crates/workloads/src/onoff.rs:
crates/workloads/src/shuffle.rs:
