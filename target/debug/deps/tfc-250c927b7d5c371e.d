/root/repo/target/debug/deps/tfc-250c927b7d5c371e.d: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/debug/deps/libtfc-250c927b7d5c371e.rlib: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/debug/deps/libtfc-250c927b7d5c371e.rmeta: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

crates/core/src/lib.rs:
crates/core/src/arbiter.rs:
crates/core/src/config.rs:
crates/core/src/port.rs:
crates/core/src/sender.rs:
crates/core/src/stack.rs:
crates/core/src/switch.rs:
