/root/repo/target/debug/deps/tfc_bench-ad306099c882bd58.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/libtfc_bench-ad306099c882bd58.rlib: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/libtfc_bench-ad306099c882bd58.rmeta: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
