/root/repo/target/debug/deps/reliability-fcfc5abed881af5c.d: tests/reliability.rs

/root/repo/target/debug/deps/reliability-fcfc5abed881af5c: tests/reliability.rs

tests/reliability.rs:
