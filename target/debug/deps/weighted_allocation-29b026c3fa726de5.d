/root/repo/target/debug/deps/weighted_allocation-29b026c3fa726de5.d: tests/weighted_allocation.rs

/root/repo/target/debug/deps/weighted_allocation-29b026c3fa726de5: tests/weighted_allocation.rs

tests/weighted_allocation.rs:
