/root/repo/target/debug/deps/tfc_repro-6588783d687adeb4.d: src/lib.rs

/root/repo/target/debug/deps/tfc_repro-6588783d687adeb4: src/lib.rs

src/lib.rs:
