/root/repo/target/debug/deps/rng-d496258c0907b521.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/debug/deps/rng-d496258c0907b521: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
