/root/repo/target/debug/deps/tfc-95f4836df9c8b9d7.d: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/debug/deps/libtfc-95f4836df9c8b9d7.rlib: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

/root/repo/target/debug/deps/libtfc-95f4836df9c8b9d7.rmeta: crates/core/src/lib.rs crates/core/src/arbiter.rs crates/core/src/config.rs crates/core/src/port.rs crates/core/src/sender.rs crates/core/src/stack.rs crates/core/src/switch.rs

crates/core/src/lib.rs:
crates/core/src/arbiter.rs:
crates/core/src/config.rs:
crates/core/src/port.rs:
crates/core/src/sender.rs:
crates/core/src/stack.rs:
crates/core/src/switch.rs:
