/root/repo/target/debug/deps/rng-992e3cad166dff59.d: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/debug/deps/librng-992e3cad166dff59.rlib: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

/root/repo/target/debug/deps/librng-992e3cad166dff59.rmeta: crates/rng/src/lib.rs crates/rng/src/props.rs crates/rng/src/seq.rs

crates/rng/src/lib.rs:
crates/rng/src/props.rs:
crates/rng/src/seq.rs:
