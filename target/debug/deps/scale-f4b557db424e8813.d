/root/repo/target/debug/deps/scale-f4b557db424e8813.d: tests/scale.rs

/root/repo/target/debug/deps/scale-f4b557db424e8813: tests/scale.rs

tests/scale.rs:
