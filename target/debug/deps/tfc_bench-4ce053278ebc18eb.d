/root/repo/target/debug/deps/tfc_bench-4ce053278ebc18eb.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/tfc_bench-4ce053278ebc18eb: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
