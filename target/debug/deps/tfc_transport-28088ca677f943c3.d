/root/repo/target/debug/deps/tfc_transport-28088ca677f943c3.d: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/libtfc_transport-28088ca677f943c3.rlib: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

/root/repo/target/debug/deps/libtfc_transport-28088ca677f943c3.rmeta: crates/transport/src/lib.rs crates/transport/src/recv.rs crates/transport/src/rtt.rs crates/transport/src/stack.rs crates/transport/src/tcp.rs

crates/transport/src/lib.rs:
crates/transport/src/recv.rs:
crates/transport/src/rtt.rs:
crates/transport/src/stack.rs:
crates/transport/src/tcp.rs:
