/root/repo/target/debug/deps/tfc_experiments-7c5a79ed9ade7881.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

/root/repo/target/debug/deps/libtfc_experiments-7c5a79ed9ade7881.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

/root/repo/target/debug/deps/libtfc_experiments-7c5a79ed9ade7881.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/benchmark.rs crates/experiments/src/goodput.rs crates/experiments/src/incast.rs crates/experiments/src/ne.rs crates/experiments/src/proto.rs crates/experiments/src/rho.rs crates/experiments/src/rttb.rs crates/experiments/src/sweeps.rs crates/experiments/src/util.rs crates/experiments/src/workconserving.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/benchmark.rs:
crates/experiments/src/goodput.rs:
crates/experiments/src/incast.rs:
crates/experiments/src/ne.rs:
crates/experiments/src/proto.rs:
crates/experiments/src/rho.rs:
crates/experiments/src/rttb.rs:
crates/experiments/src/sweeps.rs:
crates/experiments/src/util.rs:
crates/experiments/src/workconserving.rs:
