/root/repo/target/debug/deps/properties-addd87bea34fef8b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-addd87bea34fef8b: tests/properties.rs

tests/properties.rs:
