/root/repo/target/debug/deps/end_to_end-07047c76ea36ed5d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-07047c76ea36ed5d: tests/end_to_end.rs

tests/end_to_end.rs:
