/root/repo/target/debug/deps/tfc_repro-7c776b0f6ac349a0.d: src/lib.rs

/root/repo/target/debug/deps/tfc_repro-7c776b0f6ac349a0: src/lib.rs

src/lib.rs:
