/root/repo/target/debug/deps/tfc_bench-481824bfeda56af0.d: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

/root/repo/target/debug/deps/tfc_bench-481824bfeda56af0: crates/bench/src/lib.rs crates/bench/src/chart.rs crates/bench/src/harness.rs crates/bench/src/json.rs

crates/bench/src/lib.rs:
crates/bench/src/chart.rs:
crates/bench/src/harness.rs:
crates/bench/src/json.rs:
