/root/repo/target/debug/deps/tfc_workloads-6719a88b8b6fc1ca.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

/root/repo/target/debug/deps/tfc_workloads-6719a88b8b6fc1ca: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/dist.rs crates/workloads/src/incast.rs crates/workloads/src/onoff.rs crates/workloads/src/shuffle.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/incast.rs:
crates/workloads/src/onoff.rs:
crates/workloads/src/shuffle.rs:
