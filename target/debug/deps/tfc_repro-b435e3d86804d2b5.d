/root/repo/target/debug/deps/tfc_repro-b435e3d86804d2b5.d: src/lib.rs

/root/repo/target/debug/deps/libtfc_repro-b435e3d86804d2b5.rlib: src/lib.rs

/root/repo/target/debug/deps/libtfc_repro-b435e3d86804d2b5.rmeta: src/lib.rs

src/lib.rs:
