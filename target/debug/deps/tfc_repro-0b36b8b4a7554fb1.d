/root/repo/target/debug/deps/tfc_repro-0b36b8b4a7554fb1.d: src/lib.rs

/root/repo/target/debug/deps/libtfc_repro-0b36b8b4a7554fb1.rlib: src/lib.rs

/root/repo/target/debug/deps/libtfc_repro-0b36b8b4a7554fb1.rmeta: src/lib.rs

src/lib.rs:
