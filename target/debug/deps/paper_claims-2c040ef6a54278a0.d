/root/repo/target/debug/deps/paper_claims-2c040ef6a54278a0.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-2c040ef6a54278a0: tests/paper_claims.rs

tests/paper_claims.rs:
