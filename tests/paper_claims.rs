//! Headline claims of the paper as executable assertions, beyond the
//! per-figure experiments: RTT-biased fairness (§4.1), equal windows for
//! unequal paths, single-flow zero queueing, and fast window handoff
//! when a flow departs.

use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::testbed;
use simnet::units::{Dur, Time};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};

/// §4.1: "we allocate an equal window to every flow passing the same
/// port" — so an intra-rack and a cross-rack flow sharing a bottleneck
/// get equal windows, and the longer-RTT flow gets proportionally less
/// throughput (fairness *with RTT bias*).
#[test]
fn equal_windows_mean_rtt_biased_throughput() {
    let (t, hosts, _) = testbed(Dur::micros(20));
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            end: Some(Time(Dur::millis(120).as_nanos())),
            ..Default::default()
        },
    );
    // H4 -> H6 is intra-rack (2 hops); H1 -> H6 crosses the core (4).
    let near = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[3], hosts[5]));
    let far = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[0], hosts[5]));
    sim.core_mut().push_data(near, 64 << 20);
    sim.core_mut().push_data(far, 64 << 20);
    sim.run();

    let d_near = sim.core().flow(near).delivered as f64;
    let d_far = sim.core().flow(far).delivered as f64;
    // Equal windows: the sender-side cwnds end up within 2x of each
    // other (same stamp at the shared bottleneck; the far flow may be
    // clamped lower by the extra hop).
    let w_near = sim.core().sender_cwnd(near).unwrap() as f64;
    let w_far = sim.core().sender_cwnd(far).unwrap() as f64;
    let w_ratio = w_near / w_far;
    assert!(
        (0.5..=2.0).contains(&w_ratio),
        "window ratio {w_ratio:.2} ({w_near} vs {w_far})"
    );
    // Throughput is RTT-biased: the near flow gets more, but not
    // absurdly more (its RTT is roughly half).
    let t_ratio = d_near / d_far;
    assert!(
        (1.05..=4.0).contains(&t_ratio),
        "throughput ratio {t_ratio:.2}"
    );
    assert_eq!(sim.core().total_drops(), 0);
}

/// Zero-queueing with a single long flow: after the token converges, the
/// bottleneck queue holds at most a couple of packets.
#[test]
fn single_flow_steady_state_queue_is_packets() {
    let (t, hosts, switches) = testbed(Dur::micros(20));
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            end: Some(Time(Dur::millis(100).as_nanos())),
            ..Default::default()
        },
    );
    let flow = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[0], hosts[5]));
    sim.core_mut().push_data(flow, 64 << 20);
    // Sample the bottleneck (NF2 toward H6) only after convergence.
    let nf2 = switches[2];
    let port = sim.core().route_of(nf2, hosts[5]).unwrap();
    sim.core_mut()
        .add_queue_sampler(simnet::trace::QueueSampler {
            node: nf2,
            port,
            every: Dur::millis(1),
            key: "q".into(),
            until: None,
        });
    sim.run();
    let q = sim.core().trace().get("q").expect("sampled");
    let late: Vec<f64> = q
        .window(Dur::millis(40).as_nanos(), u64::MAX)
        .map(|(_, v)| v)
        .collect();
    let mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
    assert!(mean < 4_500.0, "steady queue {mean:.0} bytes (~3 packets)");
    // And the link is busy: delivered at ≥ 85% of capacity.
    let bps = sim.core().flow(flow).delivered as f64 * 8.0 / 0.1;
    assert!(bps > 0.85e9, "single flow got only {bps:.2e}");
}

/// When one of two flows finishes, the survivor absorbs the freed
/// bandwidth within a few slots (the fast-handoff property that SYN/FIN
/// counting schemes like D3 get wrong for silent flows).
#[test]
fn departing_flow_hands_bandwidth_over_quickly() {
    let (t, hosts, _) = testbed(Dur::micros(20));
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            end: Some(Time(Dur::millis(120).as_nanos())),
            ..Default::default()
        },
    );
    // A sized flow that finishes around the middle of the run, and a
    // metered survivor.
    let survivor = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[0], hosts[5]));
    sim.core_mut().push_data(survivor, 64 << 20);
    sim.core_mut().meter_flow(survivor, Dur::millis(5));
    let departer = sim
        .core_mut()
        .start_flow(FlowSpec::sized(hosts[3], hosts[5], 3_000_000));
    sim.run();

    let gone_at = sim
        .core()
        .flow(departer)
        .receiver_done_at
        .expect("departer finished")
        .nanos();
    let meter = sim.core().flow(survivor).meter.as_ref().unwrap();
    let before: Vec<f64> = meter
        .series()
        .window(gone_at.saturating_sub(20_000_000), gone_at)
        .map(|(_, v)| v)
        .collect();
    let after: Vec<f64> = meter
        .series()
        .window(gone_at + 10_000_000, gone_at + 40_000_000)
        .map(|(_, v)| v)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (b, a) = (mean(&before), mean(&after));
    assert!(
        a > b * 1.4,
        "survivor goodput before {b:.2e} vs after {a:.2e}"
    );
    assert!(a > 0.85e9, "survivor did not absorb the link: {a:.2e}");
}
