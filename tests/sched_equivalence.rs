//! Scheduler-equivalence regression: the timing-wheel backend — with
//! and without same-tick batch dispatch — must reproduce the reference
//! binary-heap backend *byte for byte*.
//!
//! Two deterministic scenarios — a figure-style incast and a chaos
//! fault timeline on a leaf-spine — run once per variant, exporting the
//! full artifact bundle (manifest, counters, events, flows, TFC slot
//! gauges, lifecycle-span sketches). Every exported file except the
//! manifest must be byte-identical across all three variants: the wheel
//! is a pure data-structure substitution, and batch coalescing only
//! changes how the dispatch loop walks the already-determined
//! `(time, seq)` order, never the order itself. The manifest is the one
//! artifact that *should* differ — it records which backend produced
//! the run — so it is compared semantically: backend fields must match
//! the variant, everything else must be identical.
//!
//! Kept as a single `#[test]` because all halves set
//! `TFC_RESULTS_DIR`; Rust runs tests in threads and the environment is
//! process-global.

use std::path::{Path, PathBuf};

use chaos::FaultTimeline;
use experiments::artifacts::maybe_export;
use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{leaf_spine, star};
use simnet::units::{Bandwidth, Dur, Time};
use simnet::SchedulerKind;
use telemetry::{LogMode, TelemetryConfig};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};

/// One scheduling configuration under test.
#[derive(Clone, Copy, Debug)]
struct Variant {
    name: &'static str,
    kind: SchedulerKind,
    coalesce: bool,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "heap",
        kind: SchedulerKind::RefHeap,
        coalesce: false,
    },
    Variant {
        name: "wheel",
        kind: SchedulerKind::Wheel,
        coalesce: false,
    },
    Variant {
        name: "wheel_batched",
        kind: SchedulerKind::Wheel,
        coalesce: true,
    },
];

/// Full-fidelity telemetry, minus the wall-clock profile (which writes
/// non-deterministic nanosecond timings into `counters.json`). Span
/// tracing is on so `spans.json` joins the byte-compare: the lifecycle
/// sketches must also be backend-independent.
fn telemetry(run: &str) -> TelemetryConfig {
    TelemetryConfig {
        events: LogMode::Full,
        sample_one_in: 1,
        tfc_gauges: true,
        profile: false,
        trace: telemetry::TraceConfig::Full,
        export: Some(run.to_string()),
    }
}

/// Figure-style incast: 12 senders into one receiver through a star.
fn run_incast(v: Variant) {
    let (t, hosts, _hub) = star(13, Bandwidth::gbps(1), Dur::micros(5));
    let receiver = hosts[0];
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            seed: 7,
            end: Some(Time(Dur::millis(30).as_nanos())),
            telemetry: telemetry("equiv_incast"),
            scheduler: v.kind,
            coalesce: v.coalesce,
            ..Default::default()
        },
    );
    for (i, &src) in hosts[1..].iter().enumerate() {
        sim.core_mut()
            .start_flow(FlowSpec::sized(src, receiver, 64_000 + 1_000 * i as u64));
    }
    sim.run();
    maybe_export(sim.core(), "star(13)", "sched-equivalence incast");
}

/// Chaos timeline on a small leaf-spine: link flap, host stall, loss
/// burst, and a policy reset, all scripted at fixed times.
fn run_chaos(v: Variant) {
    let (t, hosts, switches) = leaf_spine(
        4,
        6,
        Bandwidth::gbps(1),
        Bandwidth::gbps(10),
        Dur::micros(20),
    );
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            seed: 11,
            end: Some(Time(Dur::millis(40).as_nanos())),
            telemetry: telemetry("equiv_chaos"),
            scheduler: v.kind,
            coalesce: v.coalesce,
            ..Default::default()
        },
    );
    for i in 0..16usize {
        let src = hosts[i];
        let dst = hosts[(i + 7) % hosts.len()];
        sim.core_mut()
            .start_flow(FlowSpec::sized(src, dst, 40_000 + 500 * i as u64));
    }
    let leaf = switches[0];
    FaultTimeline::new()
        .link_flap(Time(2_000_000), Dur::millis(1), leaf, 0)
        .host_stall(Time(6_000_000), Dur::millis(2), hosts[3])
        .loss_burst(Time(12_000_000), Dur::millis(1), leaf, 1, 300)
        .policy_reset(Time(20_000_000), leaf, 2)
        .install(sim.core_mut());
    sim.run();
    maybe_export(sim.core(), "leaf_spine(4x6)", "sched-equivalence chaos");
}

fn read(dir: &Path, run: &str, file: &str) -> Vec<u8> {
    let p = dir.join(run).join(file);
    std::fs::read(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

const ARTIFACTS: [&str; 5] = [
    "counters.json",
    "events.json",
    "flows.json",
    "tfc_slots.csv",
    "spans.json",
];

/// Manifests differ across variants exactly in the backend fields; the
/// rest of the document must match the reference byte-for-byte.
fn check_manifest(dir: &Path, run: &str, v: Variant, reference: &telemetry::json::Value) {
    let text = String::from_utf8(read(dir, run, "manifest.json")).unwrap();
    let mut doc = telemetry::json::parse(&text).unwrap_or_else(|e| panic!("{run} manifest: {e}"));
    let sim = doc.get("sim").unwrap_or_else(|| panic!("{run} manifest lacks sim metadata"));
    assert_eq!(
        sim.get("scheduler").and_then(|s| s.as_str()),
        Some(format!("{:?}", v.kind).as_str()),
        "{run} manifest records the wrong scheduler for {}",
        v.name
    );
    assert_eq!(
        sim.get("coalesce").and_then(|b| b.as_bool()),
        Some(v.coalesce),
        "{run} manifest records the wrong coalesce flag for {}",
        v.name
    );
    assert_eq!(
        sim.get("trace").and_then(|s| s.as_str()),
        Some("full"),
        "{run} manifest records the wrong trace mode for {}",
        v.name
    );
    if let telemetry::json::Value::Object(m) = &mut doc {
        m.remove("sim");
    }
    assert_eq!(
        doc.pretty(),
        reference.pretty(),
        "{run} manifest differs beyond backend fields for {}",
        v.name
    );
}

/// The reference manifest with the variant-specific fields removed.
fn manifest_sans_sim(dir: &Path, run: &str) -> telemetry::json::Value {
    let text = String::from_utf8(read(dir, run, "manifest.json")).unwrap();
    let mut doc = telemetry::json::parse(&text).unwrap();
    if let telemetry::json::Value::Object(m) = &mut doc {
        m.remove("sim");
    }
    doc
}

#[test]
fn wheel_and_batching_reproduce_heap_artifacts_byte_for_byte() {
    let base = std::env::temp_dir().join("tfc_sched_equiv_test");
    std::fs::remove_dir_all(&base).ok();
    let dir_of = |v: Variant| -> PathBuf {
        let dir = base.join(v.name);
        std::env::set_var("TFC_RESULTS_DIR", &dir);
        run_incast(v);
        run_chaos(v);
        dir
    };
    let dirs: Vec<PathBuf> = VARIANTS.iter().map(|&v| dir_of(v)).collect();
    std::env::remove_var("TFC_RESULTS_DIR");

    let reference = &dirs[0];
    for run in ["equiv_incast", "equiv_chaos"] {
        for file in ARTIFACTS {
            let want = read(reference, run, file);
            assert!(!want.is_empty(), "{run}/{file} is empty");
            for (v, dir) in VARIANTS.iter().zip(&dirs).skip(1) {
                let got = read(dir, run, file);
                assert_eq!(
                    want, got,
                    "{run}/{file} differs between {} and {}",
                    VARIANTS[0].name, v.name
                );
            }
        }
        let ref_manifest = manifest_sans_sim(reference, run);
        for (&v, dir) in VARIANTS.iter().zip(&dirs) {
            check_manifest(dir, run, v, &ref_manifest);
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
