//! Scheduler-equivalence regression: the timing-wheel backend — with
//! and without same-tick batch dispatch — and the sharded parallel
//! backend at 1, 2, and 4 worker threads must all reproduce the
//! reference binary-heap backend *byte for byte*.
//!
//! Four deterministic scenarios — a figure-style incast, a chaos
//! fault timeline on a leaf-spine, an open-loop streaming run with
//! flow retirement, and an ECMP fat-tree with link churn (multipath
//! spray plus selection-time reroute) — run once per variant,
//! exporting the full artifact
//! bundle (manifest, counters, events, flows, TFC slot gauges,
//! lifecycle-span sketches). Every exported file except the manifest
//! must be byte-identical across all variants: the wheel is a pure
//! data-structure substitution, batch coalescing only changes how the
//! dispatch loop walks the already-determined `(time, seq)` order, and
//! the sharded backend's worker threads only *extract* conservative
//! lookahead windows in parallel — the merged pop order is keyed by the
//! globally unique `(time, seq)` pair, so thread interleaving can leak
//! into nothing. The manifest is the one artifact that *should* differ
//! — it records which backend produced the run — so it is compared
//! semantically: backend fields must match the variant, everything
//! else must be identical.
//!
//! The streaming scenario pushes the bar further: flow ids are
//! recycled mid-run through the retirement quarantine and the retired
//! sketches land in the v2 `flows.json`, so byte-identity here proves
//! the whole retirement pipeline — deferred `Retire` calls, slab
//! reuse, sketch folds — is schedule-stable. A same-seed re-run of the
//! reference variant must also reproduce the entire streaming bundle
//! (manifest included) byte for byte.
//!
//! Kept as a single `#[test]` because all halves set
//! `TFC_RESULTS_DIR`; Rust runs tests in threads and the environment is
//! process-global.

use std::path::{Path, PathBuf};

use chaos::FaultTimeline;
use experiments::artifacts::maybe_export;
use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::retire::RetireConfig;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{fat_tree, leaf_spine, star};
use simnet::units::{Bandwidth, Dur, Time};
use simnet::SchedulerKind;
use telemetry::{LogMode, TelemetryConfig};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use workloads::dist::{background_flow_sizes, cache_follower_flow_sizes};
use workloads::{StreamApp, StreamClass, StreamConfig};

/// One scheduling configuration under test.
#[derive(Clone, Copy, Debug)]
struct Variant {
    name: &'static str,
    kind: SchedulerKind,
    coalesce: bool,
}

const VARIANTS: [Variant; 6] = [
    Variant {
        name: "heap",
        kind: SchedulerKind::RefHeap,
        coalesce: false,
    },
    Variant {
        name: "wheel",
        kind: SchedulerKind::Wheel,
        coalesce: false,
    },
    Variant {
        name: "wheel_batched",
        kind: SchedulerKind::Wheel,
        coalesce: true,
    },
    // The sharded backend must be byte-identical at every thread count:
    // worker threads only extract lookahead windows in parallel, the
    // merged (time, seq) order — and so every artifact byte — is
    // thread-invariant. Batched dispatch rides on top, as in production.
    Variant {
        name: "sharded_t1",
        kind: SchedulerKind::Sharded { threads: 1 },
        coalesce: true,
    },
    Variant {
        name: "sharded_t2",
        kind: SchedulerKind::Sharded { threads: 2 },
        coalesce: true,
    },
    Variant {
        name: "sharded_t4",
        kind: SchedulerKind::Sharded { threads: 4 },
        coalesce: true,
    },
];

/// Full-fidelity telemetry, minus the wall-clock profile (which writes
/// non-deterministic nanosecond timings into `counters.json`). Span
/// tracing is on so `spans.json` joins the byte-compare: the lifecycle
/// sketches must also be backend-independent.
fn telemetry(run: &str) -> TelemetryConfig {
    TelemetryConfig {
        events: LogMode::Full,
        sample_one_in: 1,
        tfc_gauges: true,
        profile: false,
        trace: telemetry::TraceConfig::Full,
        export: Some(run.to_string()),
    }
}

/// Figure-style incast: 12 senders into one receiver through a star.
fn run_incast(v: Variant) {
    let (t, hosts, _hub) = star(13, Bandwidth::gbps(1), Dur::micros(5));
    let receiver = hosts[0];
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            seed: 7,
            end: Some(Time(Dur::millis(30).as_nanos())),
            telemetry: telemetry("equiv_incast"),
            scheduler: v.kind,
            coalesce: v.coalesce,
            ..Default::default()
        },
    );
    for (i, &src) in hosts[1..].iter().enumerate() {
        sim.core_mut()
            .start_flow(FlowSpec::sized(src, receiver, 64_000 + 1_000 * i as u64));
    }
    sim.run();
    maybe_export(sim.core(), "star(13)", "sched-equivalence incast");
}

/// Chaos timeline on a small leaf-spine: link flap, host stall, loss
/// burst, and a policy reset, all scripted at fixed times.
fn run_chaos(v: Variant) {
    let (t, hosts, switches) = leaf_spine(
        4,
        6,
        Bandwidth::gbps(1),
        Bandwidth::gbps(10),
        Dur::micros(20),
    );
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            seed: 11,
            end: Some(Time(Dur::millis(40).as_nanos())),
            telemetry: telemetry("equiv_chaos"),
            scheduler: v.kind,
            coalesce: v.coalesce,
            ..Default::default()
        },
    );
    for i in 0..16usize {
        let src = hosts[i];
        let dst = hosts[(i + 7) % hosts.len()];
        sim.core_mut()
            .start_flow(FlowSpec::sized(src, dst, 40_000 + 500 * i as u64));
    }
    let leaf = switches[0];
    FaultTimeline::new()
        .link_flap(Time(2_000_000), Dur::millis(1), leaf, 0)
        .host_stall(Time(6_000_000), Dur::millis(2), hosts[3])
        .loss_burst(Time(12_000_000), Dur::millis(1), leaf, 1, 300)
        .policy_reset(Time(20_000_000), leaf, 2)
        .install(sim.core_mut());
    sim.run();
    maybe_export(sim.core(), "leaf_spine(4x6)", "sched-equivalence chaos");
}

/// Open-loop streaming mix with flow retirement: two RPC classes drive
/// a small leaf-spine until 1 500 flows complete, recycling flow ids
/// through the retirement quarantine along the way. The retired
/// sketches and per-class counters ride in the v2 `flows.json`.
fn run_stream(v: Variant) {
    let (t, hosts, _switches) = leaf_spine(
        3,
        4,
        Bandwidth::gbps(10),
        Bandwidth::gbps(40),
        Dur::micros(20),
    );
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let app = StreamApp::new(StreamConfig {
        hosts,
        classes: vec![
            StreamClass {
                name: "cache-follower".into(),
                mean_interarrival: Dur::micros(4),
                sizes: cache_follower_flow_sizes(),
                weight: 1,
            },
            StreamClass {
                name: "web-search".into(),
                mean_interarrival: Dur::micros(40),
                sizes: background_flow_sizes(),
                weight: 1,
            },
        ],
        target_completed: Some(1_500),
        horizon: None,
        max_active: 0,
    });
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        app,
        SimConfig {
            seed: 23,
            retire: Some(RetireConfig {
                base_rtt: Dur::micros(170),
                line_rate: Bandwidth::gbps(10),
                classes: vec!["cache-follower".into(), "web-search".into()],
                ..RetireConfig::default()
            }),
            telemetry: telemetry("equiv_stream"),
            scheduler: v.kind,
            coalesce: v.coalesce,
            ..Default::default()
        },
    );
    sim.run();
    assert!(
        sim.app().completed() >= 1_500,
        "stream scenario stalled at {} completions under {}",
        sim.app().completed(),
        v.name
    );
    maybe_export(sim.core(), "leaf_spine(3x4)", "sched-equivalence stream");
}

/// ECMP fat-tree under route churn: cross-pod flows spray over the
/// k/2-way equal-cost route sets while an edge uplink flaps down and
/// back twice. Next-hop choice is the pure `(flow, hop)` hash and the
/// reroute filter reads only port liveness, so neither the backend nor
/// the worker count may leak into a single artifact byte — this is the
/// gate that proves route churn does not break sharded lookahead
/// determinism.
fn run_ecmp(v: Variant) {
    let (t, hosts, switches) = fat_tree(
        4,
        Bandwidth::gbps(1),
        Bandwidth::gbps(10),
        Dur::micros(20),
    );
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            seed: 31,
            end: Some(Time(Dur::millis(40).as_nanos())),
            telemetry: telemetry("equiv_ecmp"),
            scheduler: v.kind,
            coalesce: v.coalesce,
            ..Default::default()
        },
    );
    // Cross-pod pairs so every path climbs to the core and back: each
    // flow hashes onto one of the 2 uplinks / 2 core members per hop.
    for i in 0..12usize {
        let src = hosts[i];
        let dst = hosts[(i + hosts.len() / 2) % hosts.len()];
        sim.core_mut()
            .start_flow(FlowSpec::sized(src, dst, 48_000 + 750 * i as u64));
    }
    // switches = 4 cores, then per pod [agg, agg, edge, edge]; pod 0's
    // first edge is switches[6] and its ports 0..1 are the agg uplinks.
    let edge0 = switches[6];
    FaultTimeline::new()
        .link_flap(Time(3_000_000), Dur::millis(2), edge0, 0)
        .link_flap(Time(12_000_000), Dur::millis(1), edge0, 1)
        .install(sim.core_mut());
    sim.run();
    maybe_export(sim.core(), "fat_tree(4)", "sched-equivalence ecmp churn");
}

fn read(dir: &Path, run: &str, file: &str) -> Vec<u8> {
    let p = dir.join(run).join(file);
    std::fs::read(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

const ARTIFACTS: [&str; 5] = [
    "counters.json",
    "events.json",
    "flows.json",
    "tfc_slots.csv",
    "spans.json",
];

/// Manifests differ across variants exactly in the backend fields; the
/// rest of the document must match the reference byte-for-byte.
fn check_manifest(dir: &Path, run: &str, v: Variant, reference: &telemetry::json::Value) {
    let text = String::from_utf8(read(dir, run, "manifest.json")).unwrap();
    let mut doc = telemetry::json::parse(&text).unwrap_or_else(|e| panic!("{run} manifest: {e}"));
    let sim = doc.get("sim").unwrap_or_else(|| panic!("{run} manifest lacks sim metadata"));
    assert_eq!(
        sim.get("scheduler").and_then(|s| s.as_str()),
        Some(format!("{:?}", v.kind).as_str()),
        "{run} manifest records the wrong scheduler for {}",
        v.name
    );
    assert_eq!(
        sim.get("coalesce").and_then(|b| b.as_bool()),
        Some(v.coalesce),
        "{run} manifest records the wrong coalesce flag for {}",
        v.name
    );
    assert_eq!(
        sim.get("trace").and_then(|s| s.as_str()),
        Some("full"),
        "{run} manifest records the wrong trace mode for {}",
        v.name
    );
    if let telemetry::json::Value::Object(m) = &mut doc {
        m.remove("sim");
    }
    assert_eq!(
        doc.pretty(),
        reference.pretty(),
        "{run} manifest differs beyond backend fields for {}",
        v.name
    );
}

/// The reference manifest with the variant-specific fields removed.
fn manifest_sans_sim(dir: &Path, run: &str) -> telemetry::json::Value {
    let text = String::from_utf8(read(dir, run, "manifest.json")).unwrap();
    let mut doc = telemetry::json::parse(&text).unwrap();
    if let telemetry::json::Value::Object(m) = &mut doc {
        m.remove("sim");
    }
    doc
}

#[test]
fn wheel_and_batching_reproduce_heap_artifacts_byte_for_byte() {
    let base = std::env::temp_dir().join("tfc_sched_equiv_test");
    std::fs::remove_dir_all(&base).ok();
    let dir_of = |v: Variant| -> PathBuf {
        let dir = base.join(v.name);
        std::env::set_var("TFC_RESULTS_DIR", &dir);
        run_incast(v);
        run_chaos(v);
        run_stream(v);
        run_ecmp(v);
        dir
    };
    let dirs: Vec<PathBuf> = VARIANTS.iter().map(|&v| dir_of(v)).collect();

    // Same-seed re-run of the reference variant: the streaming bundle —
    // manifest included, since backend and seed are identical — must
    // reproduce byte for byte. Retirement recycles flow ids mid-run, so
    // this pins down the whole lifecycle pipeline, not just the
    // scheduler.
    let rerun = base.join("heap_rerun");
    std::env::set_var("TFC_RESULTS_DIR", &rerun);
    run_stream(VARIANTS[0]);
    for file in ARTIFACTS.into_iter().chain(["manifest.json"]) {
        assert_eq!(
            read(&dirs[0], "equiv_stream", file),
            read(&rerun, "equiv_stream", file),
            "equiv_stream/{file} differs between same-seed re-runs"
        );
    }

    // Repeated-run determinism under real parallelism: the 4-thread
    // sharded variant must reproduce its own streaming bundle (manifest
    // included) byte for byte — thread scheduling leaks into nothing.
    let sharded4 = VARIANTS[5];
    let srerun = base.join("sharded_rerun");
    std::env::set_var("TFC_RESULTS_DIR", &srerun);
    run_stream(sharded4);
    std::env::remove_var("TFC_RESULTS_DIR");
    for file in ARTIFACTS.into_iter().chain(["manifest.json"]) {
        assert_eq!(
            read(&dirs[5], "equiv_stream", file),
            read(&srerun, "equiv_stream", file),
            "equiv_stream/{file} differs between same-seed sharded re-runs"
        );
    }

    let reference = &dirs[0];
    for run in ["equiv_incast", "equiv_chaos", "equiv_stream", "equiv_ecmp"] {
        for file in ARTIFACTS {
            let want = read(reference, run, file);
            assert!(!want.is_empty(), "{run}/{file} is empty");
            for (v, dir) in VARIANTS.iter().zip(&dirs).skip(1) {
                let got = read(dir, run, file);
                assert_eq!(
                    want, got,
                    "{run}/{file} differs between {} and {}",
                    VARIANTS[0].name, v.name
                );
            }
        }
        let ref_manifest = manifest_sans_sim(reference, run);
        for (&v, dir) in VARIANTS.iter().zip(&dirs) {
            check_manifest(dir, run, v, &ref_manifest);
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
