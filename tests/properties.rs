//! Cross-crate property tests: whatever the topology, flow matrix, or
//! protocol, every sized flow delivers its exact byte count, and the
//! simulation is deterministic.

use rng::props::{cases, vec_u64};
use rng::Rng;
use simnet::app::NullApp;
use simnet::endpoint::{FlowSpec, ProtocolStack};
use simnet::fault::FaultAction;
use simnet::policy::{DropTail, EcnMark};
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{star, testbed};
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::{LogMode, TelemetryConfig};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use transport::{DctcpStack, TcpStack};
use workloads::{OnOffApp, OnOffFlow};

#[derive(Debug, Clone, Copy)]
enum Which {
    Tcp,
    Dctcp,
    Tfc,
}

fn stack(w: Which) -> Box<dyn ProtocolStack> {
    match w {
        Which::Tcp => Box::new(TcpStack::default()),
        Which::Dctcp => Box::new(DctcpStack::default()),
        Which::Tfc => Box::new(TfcStack::default()),
    }
}

fn run_matrix(w: Which, seed: u64, sizes: &[u64]) -> Vec<(u64, u64)> {
    // Star with enough hosts that src != dst pairs exist.
    let n = 4;
    let (t, hosts, _) = star(n, Bandwidth::gbps(1), Dur::micros(1));
    let net = match w {
        Which::Tcp => t.build(|_, _| Box::new(DropTail)),
        Which::Dctcp => t.build(|_, _| Box::new(EcnMark::new(32_000))),
        Which::Tfc => t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default())),
    };
    let mut sim = Simulator::new(
        net,
        stack(w),
        NullApp,
        SimConfig {
            seed,
            end: Some(Time(Dur::secs(20).as_nanos())),
            ..Default::default()
        },
    );
    let mut flows = Vec::new();
    for (i, &bytes) in sizes.iter().enumerate() {
        let src = hosts[i % n];
        let dst = hosts[(i + 1 + i % (n - 1)) % n];
        if src == dst {
            continue;
        }
        flows.push((
            sim.core_mut().start_flow(FlowSpec {
                src,
                dst,
                bytes: Some(bytes),
                weight: 1,
            }),
            bytes,
        ));
    }
    sim.run();
    flows
        .into_iter()
        .map(|(f, expect)| {
            let st = sim.core().flow(f);
            assert!(
                st.receiver_done_at.is_some(),
                "flow {f:?} of {expect} B never completed"
            );
            (st.delivered, expect)
        })
        .collect()
}

#[test]
fn every_flow_delivers_exactly_its_bytes() {
    cases(12, |_case, rng| {
        let sizes = vec_u64(rng, 1..6, 1..400_000);
        let seed = rng.gen_range(0..1_000u64);
        let which = *[Which::Tcp, Which::Dctcp, Which::Tfc]
            .get(rng.gen_range(0..3usize))
            .expect("in range");
        for (delivered, expect) in run_matrix(which, seed, &sizes) {
            assert_eq!(
                delivered, expect,
                "{which:?} seed {seed}: delivered {delivered} of {expect} B ({sizes:?})"
            );
        }
    });
}

#[test]
fn tfc_never_drops_on_clean_fabric() {
    cases(12, |_case, rng| {
        let sizes = vec_u64(rng, 1..8, 1_000..200_000);
        let seed = rng.gen_range(0..1_000u64);
        let (t, hosts, _) = testbed(Dur::nanos(500));
        let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
        let mut sim = Simulator::new(
            net,
            Box::new(TfcStack::default()),
            NullApp,
            SimConfig {
                seed,
                end: Some(Time(Dur::secs(5).as_nanos())),
                ..Default::default()
            },
        );
        for (i, &bytes) in sizes.iter().enumerate() {
            let src = hosts[i % 8];
            sim.core_mut().start_flow(FlowSpec {
                src,
                dst: hosts[8],
                bytes: Some(bytes),
                weight: 1,
            });
        }
        sim.run();
        assert_eq!(sim.core().total_drops(), 0, "seed {seed}, sizes {sizes:?}");
        for (f, st) in sim.core().flows() {
            assert!(
                st.receiver_done_at.is_some(),
                "flow {f:?} incomplete (seed {seed}, sizes {sizes:?})"
            );
        }
    });
}

/// §4.3: when a host stalls without FIN, the TFC bottleneck port's rho
/// counter notices the silence and counts the flow out of E within two
/// slot closes, so its tokens return to the pool — whatever the seed.
#[test]
fn tfc_reclaims_stalled_flow_tokens_within_two_slots() {
    cases(8, |_case, rng| {
        let seed = rng.gen_range(0..1_000u64);
        let n = 5;
        let horizon = Dur::millis(30).as_nanos();
        let fault_ns = Dur::millis(10).as_nanos();
        let (t, hosts, sw) = star(n, Bandwidth::gbps(1), Dur::nanos(500));
        let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
        let flows: Vec<OnOffFlow> = hosts[..n - 1]
            .iter()
            .map(|&src| OnOffFlow {
                src,
                dst: hosts[n - 1],
                active: vec![(0, horizon)],
            })
            .collect();
        let mut sim = Simulator::new(
            net,
            Box::new(TfcStack::default()),
            OnOffApp::new(flows, 128 * 1024),
            SimConfig {
                seed,
                end: Some(Time(horizon)),
                telemetry: TelemetryConfig {
                    events: LogMode::Off,
                    sample_one_in: 1,
                    tfc_gauges: true,
                    profile: false,
                    trace: telemetry::TraceConfig::Off,
                    export: None,
                },
                ..Default::default()
            },
        );
        sim.core_mut()
            .inject_fault(Time(fault_ns), FaultAction::HostStall { node: hosts[0] });
        let port = sim.core().route_of(sw, hosts[n - 1]).expect("route");
        sim.run();
        let series: Vec<(u64, f64)> = sim
            .core()
            .telemetry()
            .slots
            .iter()
            .filter(|sl| sl.node == sw.0 && sl.port as usize == port)
            .map(|sl| (sl.at_ns, sl.effective_flows))
            .collect();
        let e_before = series
            .iter()
            .take_while(|&&(at, _)| at < fault_ns)
            .last()
            .map(|&(_, e)| e)
            .expect("pre-fault slot samples");
        assert!(
            e_before > 3.5,
            "seed {seed}: expected ~4 effective flows pre-fault, E = {e_before:.2}"
        );
        // Close 1 may still count the victim (it sent early in the
        // slot); by close 2 a full silent slot has elapsed.
        let after: Vec<f64> = series
            .iter()
            .filter(|&&(at, _)| at >= fault_ns)
            .map(|&(_, e)| e)
            .take(2)
            .collect();
        assert!(
            after.last().is_some_and(|&e| e <= e_before - 0.5),
            "seed {seed}: E {e_before:.2} -> {after:?} within two slot closes"
        );
    });
}

#[test]
fn identical_seeds_identical_outcomes_all_protocols() {
    for w in [Which::Tcp, Which::Dctcp, Which::Tfc] {
        let a = run_matrix(w, 42, &[10_000, 250_000, 777]);
        let b = run_matrix(w, 42, &[10_000, 250_000, 777]);
        assert_eq!(a, b, "{w:?} not deterministic");
    }
}

/// Randomized schedule/pop/cancel interleavings against a naive sorted-
/// vec model, under both scheduler backends. Checks min-time pop order,
/// FIFO tie-breaking at equal timestamps, bucket-boundary offsets,
/// far-future overflow times, time zero, and cancellation (including
/// stale handles after fire or double-cancel).
#[test]
fn scheduler_matches_sorted_vec_model() {
    use simnet::event::{Event, EventQueue};
    use simnet::{SchedulerKind, TimerHandle};

    // (at, seq, token): the model pops the smallest (at, seq).
    struct Model {
        live: Vec<(u64, u64, u64)>,
        next_seq: u64,
    }
    impl Model {
        fn push(&mut self, at: u64, token: u64) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.live.push((at, seq, token));
            seq
        }
        fn pop(&mut self) -> Option<(u64, u64)> {
            let i = (0..self.live.len()).min_by_key(|&i| (self.live[i].0, self.live[i].1))?;
            let (at, _, token) = self.live.remove(i);
            Some((at, token))
        }
        fn cancel(&mut self, seq: u64) -> bool {
            match self.live.iter().position(|&(_, s, _)| s == seq) {
                Some(i) => {
                    self.live.remove(i);
                    true
                }
                None => false,
            }
        }
    }

    for kind in [SchedulerKind::Wheel, SchedulerKind::RefHeap] {
        cases(48, |case, rng| {
            let mut q = EventQueue::with_kind(kind);
            let mut model = Model {
                live: Vec::new(),
                next_seq: 0,
            };
            // Cancellable entries still pending: (model seq, token, handle).
            let mut handles: Vec<(u64, u64, TimerHandle)> = Vec::new();
            let mut spent: Vec<TimerHandle> = Vec::new();
            let mut now = 0u64;
            let mut token = 0u64;
            for step in 0..400u32 {
                match rng.gen_range(0u32..10) {
                    // Schedule (0-5: plain, 6-7: cancellable).
                    op @ 0..=7 => {
                        let off = match rng.gen_range(0u32..8) {
                            0 => 0, // time zero / exactly now
                            1 => rng.gen_range(0u64..4),
                            2 => 255,
                            3 => 256, // tick granularity boundary
                            4 => 257,
                            5 => 16_384, // level boundary
                            6 => rng.gen_range(0u64..1 << 22),
                            _ => (1 << 30) + rng.gen_range(0u64..1 << 40), // overflow tier
                        };
                        let at = Time(now + off);
                        let ev = Event::AppTimer { token };
                        if op < 6 {
                            model.push(at.nanos(), token);
                            q.schedule(at, ev);
                        } else {
                            let seq = model.push(at.nanos(), token);
                            handles.push((seq, token, q.schedule_cancellable(at, ev)));
                        }
                        token += 1;
                    }
                    // Cancel a random pending cancellable entry.
                    8 if !handles.is_empty() => {
                        let i = rng.gen_range(0..handles.len());
                        let (seq, _, h) = handles.swap_remove(i);
                        assert!(model.cancel(seq), "model lost a live entry");
                        assert!(q.cancel(h), "case {case} step {step}: live cancel failed");
                        spent.push(h);
                    }
                    // Cancel a stale handle: must refuse, must not corrupt.
                    8 => {
                        if let Some(&h) = spent.last() {
                            assert!(!q.cancel(h), "case {case} step {step}: stale cancel");
                        }
                    }
                    // Pop.
                    _ => {
                        let got = q.pop();
                        let want = model.pop();
                        let got_key = got.map(|(t, e)| match e {
                            Event::AppTimer { token } => (t.nanos(), token),
                            other => panic!("unexpected event {other:?}"),
                        });
                        assert_eq!(got_key, want, "case {case} step {step} ({kind:?})");
                        if let Some((t, _)) = got_key {
                            assert!(t >= now, "time went backwards");
                            now = t;
                        }
                        // A popped cancellable entry's handle is spent.
                        if let Some((_, tok)) = got_key {
                            if let Some(i) = handles.iter().position(|&(_, t, _)| t == tok) {
                                spent.push(handles.swap_remove(i).2);
                            }
                        }
                    }
                }
                assert_eq!(q.len(), model.live.len(), "case {case} step {step}");
            }
            // Drain: the full residual order must match the model.
            while let Some(want) = model.pop() {
                let got = q.pop().map(|(t, e)| match e {
                    Event::AppTimer { token } => (t.nanos(), token),
                    other => panic!("unexpected event {other:?}"),
                });
                assert_eq!(got, Some(want), "case {case} drain ({kind:?})");
            }
            assert!(q.pop().is_none());
        });
    }
}
