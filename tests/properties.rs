//! Cross-crate property tests: whatever the topology, flow matrix, or
//! protocol, every sized flow delivers its exact byte count, and the
//! simulation is deterministic.

use rng::props::{cases, vec_u64};
use rng::Rng;
use simnet::app::NullApp;
use simnet::endpoint::{FlowSpec, ProtocolStack};
use simnet::policy::{DropTail, EcnMark};
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{star, testbed};
use simnet::units::{Bandwidth, Dur, Time};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use transport::{DctcpStack, TcpStack};

#[derive(Debug, Clone, Copy)]
enum Which {
    Tcp,
    Dctcp,
    Tfc,
}

fn stack(w: Which) -> Box<dyn ProtocolStack> {
    match w {
        Which::Tcp => Box::new(TcpStack::default()),
        Which::Dctcp => Box::new(DctcpStack::default()),
        Which::Tfc => Box::new(TfcStack::default()),
    }
}

fn run_matrix(w: Which, seed: u64, sizes: &[u64]) -> Vec<(u64, u64)> {
    // Star with enough hosts that src != dst pairs exist.
    let n = 4;
    let (t, hosts, _) = star(n, Bandwidth::gbps(1), Dur::micros(1));
    let net = match w {
        Which::Tcp => t.build(|_, _| Box::new(DropTail)),
        Which::Dctcp => t.build(|_, _| Box::new(EcnMark::new(32_000))),
        Which::Tfc => t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default())),
    };
    let mut sim = Simulator::new(
        net,
        stack(w),
        NullApp,
        SimConfig {
            seed,
            end: Some(Time(Dur::secs(20).as_nanos())),
            ..Default::default()
        },
    );
    let mut flows = Vec::new();
    for (i, &bytes) in sizes.iter().enumerate() {
        let src = hosts[i % n];
        let dst = hosts[(i + 1 + i % (n - 1)) % n];
        if src == dst {
            continue;
        }
        flows.push((
            sim.core_mut().start_flow(FlowSpec {
                src,
                dst,
                bytes: Some(bytes),
                weight: 1,
            }),
            bytes,
        ));
    }
    sim.run();
    flows
        .into_iter()
        .map(|(f, expect)| {
            let st = sim.core().flow(f);
            assert!(
                st.receiver_done_at.is_some(),
                "flow {f:?} of {expect} B never completed"
            );
            (st.delivered, expect)
        })
        .collect()
}

#[test]
fn every_flow_delivers_exactly_its_bytes() {
    cases(12, |_case, rng| {
        let sizes = vec_u64(rng, 1..6, 1..400_000);
        let seed = rng.gen_range(0..1_000u64);
        let which = *[Which::Tcp, Which::Dctcp, Which::Tfc]
            .get(rng.gen_range(0..3usize))
            .expect("in range");
        for (delivered, expect) in run_matrix(which, seed, &sizes) {
            assert_eq!(
                delivered, expect,
                "{which:?} seed {seed}: delivered {delivered} of {expect} B ({sizes:?})"
            );
        }
    });
}

#[test]
fn tfc_never_drops_on_clean_fabric() {
    cases(12, |_case, rng| {
        let sizes = vec_u64(rng, 1..8, 1_000..200_000);
        let seed = rng.gen_range(0..1_000u64);
        let (t, hosts, _) = testbed(Dur::nanos(500));
        let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
        let mut sim = Simulator::new(
            net,
            Box::new(TfcStack::default()),
            NullApp,
            SimConfig {
                seed,
                end: Some(Time(Dur::secs(5).as_nanos())),
                ..Default::default()
            },
        );
        for (i, &bytes) in sizes.iter().enumerate() {
            let src = hosts[i % 8];
            sim.core_mut().start_flow(FlowSpec {
                src,
                dst: hosts[8],
                bytes: Some(bytes),
                weight: 1,
            });
        }
        sim.run();
        assert_eq!(sim.core().total_drops(), 0, "seed {seed}, sizes {sizes:?}");
        for (f, st) in sim.core().flows() {
            assert!(
                st.receiver_done_at.is_some(),
                "flow {f:?} incomplete (seed {seed}, sizes {sizes:?})"
            );
        }
    });
}

#[test]
fn identical_seeds_identical_outcomes_all_protocols() {
    for w in [Which::Tcp, Which::Dctcp, Which::Tfc] {
        let a = run_matrix(w, 42, &[10_000, 250_000, 777]);
        let b = run_matrix(w, 42, &[10_000, 250_000, 777]);
        assert_eq!(a, b, "{w:?} not deterministic");
    }
}
