//! Cross-crate property tests: whatever the topology, flow matrix, or
//! protocol, every sized flow delivers its exact byte count, and the
//! simulation is deterministic.

use rng::props::{cases, vec_u64};
use rng::Rng;
use simnet::app::NullApp;
use simnet::endpoint::{FlowSpec, ProtocolStack};
use simnet::fault::FaultAction;
use simnet::policy::{DropTail, EcnMark};
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{star, testbed};
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::{LogMode, TelemetryConfig};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use transport::{DctcpStack, TcpStack};
use workloads::{OnOffApp, OnOffFlow};

#[derive(Debug, Clone, Copy)]
enum Which {
    Tcp,
    Dctcp,
    Tfc,
}

fn stack(w: Which) -> Box<dyn ProtocolStack> {
    match w {
        Which::Tcp => Box::new(TcpStack::default()),
        Which::Dctcp => Box::new(DctcpStack::default()),
        Which::Tfc => Box::new(TfcStack::default()),
    }
}

fn run_matrix(w: Which, seed: u64, sizes: &[u64]) -> Vec<(u64, u64)> {
    // Star with enough hosts that src != dst pairs exist.
    let n = 4;
    let (t, hosts, _) = star(n, Bandwidth::gbps(1), Dur::micros(1));
    let net = match w {
        Which::Tcp => t.build(|_, _| Box::new(DropTail)),
        Which::Dctcp => t.build(|_, _| Box::new(EcnMark::new(32_000))),
        Which::Tfc => t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default())),
    };
    let mut sim = Simulator::new(
        net,
        stack(w),
        NullApp,
        SimConfig {
            seed,
            end: Some(Time(Dur::secs(20).as_nanos())),
            ..Default::default()
        },
    );
    let mut flows = Vec::new();
    for (i, &bytes) in sizes.iter().enumerate() {
        let src = hosts[i % n];
        let dst = hosts[(i + 1 + i % (n - 1)) % n];
        if src == dst {
            continue;
        }
        flows.push((
            sim.core_mut().start_flow(FlowSpec {
                src,
                dst,
                bytes: Some(bytes),
                weight: 1,
            }),
            bytes,
        ));
    }
    sim.run();
    flows
        .into_iter()
        .map(|(f, expect)| {
            let st = sim.core().flow(f);
            assert!(
                st.receiver_done_at.is_some(),
                "flow {f:?} of {expect} B never completed"
            );
            (st.delivered, expect)
        })
        .collect()
}

#[test]
fn every_flow_delivers_exactly_its_bytes() {
    cases(12, |_case, rng| {
        let sizes = vec_u64(rng, 1..6, 1..400_000);
        let seed = rng.gen_range(0..1_000u64);
        let which = *[Which::Tcp, Which::Dctcp, Which::Tfc]
            .get(rng.gen_range(0..3usize))
            .expect("in range");
        for (delivered, expect) in run_matrix(which, seed, &sizes) {
            assert_eq!(
                delivered, expect,
                "{which:?} seed {seed}: delivered {delivered} of {expect} B ({sizes:?})"
            );
        }
    });
}

#[test]
fn tfc_never_drops_on_clean_fabric() {
    cases(12, |_case, rng| {
        let sizes = vec_u64(rng, 1..8, 1_000..200_000);
        let seed = rng.gen_range(0..1_000u64);
        let (t, hosts, _) = testbed(Dur::nanos(500));
        let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
        let mut sim = Simulator::new(
            net,
            Box::new(TfcStack::default()),
            NullApp,
            SimConfig {
                seed,
                end: Some(Time(Dur::secs(5).as_nanos())),
                ..Default::default()
            },
        );
        for (i, &bytes) in sizes.iter().enumerate() {
            let src = hosts[i % 8];
            sim.core_mut().start_flow(FlowSpec {
                src,
                dst: hosts[8],
                bytes: Some(bytes),
                weight: 1,
            });
        }
        sim.run();
        assert_eq!(sim.core().total_drops(), 0, "seed {seed}, sizes {sizes:?}");
        for (f, st) in sim.core().flows() {
            assert!(
                st.receiver_done_at.is_some(),
                "flow {f:?} incomplete (seed {seed}, sizes {sizes:?})"
            );
        }
    });
}

/// §4.3: when a host stalls without FIN, the TFC bottleneck port's rho
/// counter notices the silence and counts the flow out of E within two
/// slot closes, so its tokens return to the pool — whatever the seed.
#[test]
fn tfc_reclaims_stalled_flow_tokens_within_two_slots() {
    cases(8, |_case, rng| {
        let seed = rng.gen_range(0..1_000u64);
        let n = 5;
        let horizon = Dur::millis(30).as_nanos();
        let fault_ns = Dur::millis(10).as_nanos();
        let (t, hosts, sw) = star(n, Bandwidth::gbps(1), Dur::nanos(500));
        let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
        let flows: Vec<OnOffFlow> = hosts[..n - 1]
            .iter()
            .map(|&src| OnOffFlow {
                src,
                dst: hosts[n - 1],
                active: vec![(0, horizon)],
            })
            .collect();
        let mut sim = Simulator::new(
            net,
            Box::new(TfcStack::default()),
            OnOffApp::new(flows, 128 * 1024),
            SimConfig {
                seed,
                end: Some(Time(horizon)),
                telemetry: TelemetryConfig {
                    events: LogMode::Off,
                    sample_one_in: 1,
                    tfc_gauges: true,
                    profile: false,
                    export: None,
                },
                ..Default::default()
            },
        );
        sim.core_mut()
            .inject_fault(Time(fault_ns), FaultAction::HostStall { node: hosts[0] });
        let port = sim.core().route_of(sw, hosts[n - 1]).expect("route");
        sim.run();
        let series: Vec<(u64, f64)> = sim
            .core()
            .telemetry()
            .slots
            .iter()
            .filter(|sl| sl.node == sw.0 && sl.port as usize == port)
            .map(|sl| (sl.at_ns, sl.effective_flows))
            .collect();
        let e_before = series
            .iter()
            .take_while(|&&(at, _)| at < fault_ns)
            .last()
            .map(|&(_, e)| e)
            .expect("pre-fault slot samples");
        assert!(
            e_before > 3.5,
            "seed {seed}: expected ~4 effective flows pre-fault, E = {e_before:.2}"
        );
        // Close 1 may still count the victim (it sent early in the
        // slot); by close 2 a full silent slot has elapsed.
        let after: Vec<f64> = series
            .iter()
            .filter(|&&(at, _)| at >= fault_ns)
            .map(|&(_, e)| e)
            .take(2)
            .collect();
        assert!(
            after.last().is_some_and(|&e| e <= e_before - 0.5),
            "seed {seed}: E {e_before:.2} -> {after:?} within two slot closes"
        );
    });
}

#[test]
fn identical_seeds_identical_outcomes_all_protocols() {
    for w in [Which::Tcp, Which::Dctcp, Which::Tfc] {
        let a = run_matrix(w, 42, &[10_000, 250_000, 777]);
        let b = run_matrix(w, 42, &[10_000, 250_000, 777]);
        assert_eq!(a, b, "{w:?} not deterministic");
    }
}
