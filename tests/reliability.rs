//! Reliability under injected loss: every protocol must deliver the
//! exact byte stream despite drops, recovering by fast retransmit or
//! RTO. Loss is injected deterministically at the switch.

use simnet::app::NullApp;
use simnet::endpoint::{FlowSpec, ProtocolStack};
use simnet::policy::PeriodicLoss;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use tfc::TfcStack;
use transport::{DctcpStack, TcpStack};

const FLOW_BYTES: u64 = 400_000;

fn run_with_loss(stack: Box<dyn ProtocolStack>, period: u64) -> (u64, u64, u64) {
    let (t, hosts, _) = star(2, Bandwidth::gbps(1), Dur::micros(1));
    let net = t.build(move |_, _| Box::new(PeriodicLoss::new(period)));
    let mut sim = Simulator::new(
        net,
        stack,
        NullApp,
        SimConfig {
            // Generous bound: multiple RTO backoffs fit.
            end: Some(Time(Dur::secs(30).as_nanos())),
            ..Default::default()
        },
    );
    let flow = sim.core_mut().start_flow(FlowSpec {
        src: hosts[0],
        dst: hosts[1],
        bytes: Some(FLOW_BYTES),
        weight: 1,
    });
    sim.run();
    let st = sim.core().flow(flow);
    assert!(
        st.receiver_done_at.is_some(),
        "flow did not complete under loss period {period}"
    );
    (st.delivered, st.retransmits, st.timeouts)
}

#[test]
fn tcp_delivers_exactly_under_loss() {
    for period in [7, 23, 101] {
        let (delivered, retx, _) = run_with_loss(Box::new(TcpStack::default()), period);
        assert_eq!(delivered, FLOW_BYTES);
        assert!(retx > 0, "loss must have caused retransmissions");
    }
}

#[test]
fn dctcp_delivers_exactly_under_loss() {
    let (delivered, retx, _) = run_with_loss(Box::new(DctcpStack::default()), 13);
    assert_eq!(delivered, FLOW_BYTES);
    assert!(retx > 0);
}

#[test]
fn tfc_delivers_exactly_under_loss() {
    for period in [7, 23, 101] {
        let (delivered, retx, _) = run_with_loss(Box::new(TfcStack::default()), period);
        assert_eq!(delivered, FLOW_BYTES);
        assert!(retx > 0);
    }
}

#[test]
fn heavy_loss_still_completes() {
    // Every 3rd data packet dropped: recovery leans on RTO chains.
    let (delivered, _, timeouts) = run_with_loss(Box::new(TcpStack::default()), 3);
    assert_eq!(delivered, FLOW_BYTES);
    let _ = timeouts; // may or may not fire depending on dup-ACK supply
}
