//! Large-topology smoke tests: the full 18 × 20-server leaf-spine of
//! §6.2.2 with randomized traffic, at a size that stays fast in debug
//! builds. Catches state-space bugs (routing tables, port indexing,
//! delimiter churn) that small topologies cannot.

use rng::seq::SliceRandom;
use rng::{Rng, SeedableRng};
use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::leaf_spine;
use simnet::units::{Bandwidth, Dur, Time};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};

#[test]
fn full_leaf_spine_random_traffic_completes() {
    let (t, hosts, _) = leaf_spine(
        18,
        20,
        Bandwidth::gbps(1),
        Bandwidth::gbps(10),
        Dur::micros(20),
    );
    assert_eq!(hosts.len(), 360);
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            end: Some(Time(Dur::millis(400).as_nanos())),
            ..Default::default()
        },
    );
    let mut rng = rng::rngs::StdRng::seed_from_u64(99);
    let mut flows = Vec::new();
    for _ in 0..150 {
        let src = *hosts.choose(&mut rng).expect("hosts");
        let mut dst = *hosts.choose(&mut rng).expect("hosts");
        while dst == src {
            dst = *hosts.choose(&mut rng).expect("hosts");
        }
        let bytes = rng.gen_range(2_000..200_000);
        flows.push((
            sim.core_mut().start_flow(FlowSpec::sized(src, dst, bytes)),
            bytes,
        ));
    }
    sim.run();
    let mut done = 0;
    for (f, bytes) in &flows {
        let st = sim.core().flow(*f);
        if st.receiver_done_at.is_some() {
            assert_eq!(st.delivered, *bytes);
            done += 1;
        }
    }
    assert!(
        done >= flows.len() - 2,
        "only {done}/{} flows completed in 400 ms",
        flows.len()
    );
    assert_eq!(sim.core().total_drops(), 0, "TFC dropped at scale");
}

#[test]
fn leaf_spine_is_deterministic_at_scale() {
    let run = || {
        let (t, hosts, _) = leaf_spine(
            6,
            8,
            Bandwidth::gbps(1),
            Bandwidth::gbps(10),
            Dur::micros(20),
        );
        let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
        let mut sim = Simulator::new(
            net,
            Box::new(TfcStack::default()),
            NullApp,
            SimConfig {
                end: Some(Time(Dur::millis(100).as_nanos())),
                ..Default::default()
            },
        );
        for i in 0..24usize {
            let src = hosts[i];
            let dst = hosts[(i + 11) % hosts.len()];
            sim.core_mut()
                .start_flow(FlowSpec::sized(src, dst, 50_000 + i as u64));
        }
        sim.run();
        (
            sim.core().events_processed(),
            sim.core().flows().map(|(_, st)| st.delivered).sum::<u64>(),
        )
    };
    assert_eq!(run(), run());
}
