//! End-to-end telemetry: a fully-traced incast run exports artifacts
//! that reconcile exactly with the simulator's ground truth.

use std::collections::BTreeSet;
use std::fs;

use experiments::incast::IncastExpConfig;
use experiments::Proto;
use telemetry::json::{self, Value};
use telemetry::TelemetryConfig;

fn load(dir: &std::path::Path, name: &str) -> Value {
    let text = fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("read {name}: {e}"));
    json::parse(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

fn i64_of(v: &Value, k: &str) -> i64 {
    v.get(k)
        .and_then(Value::as_i64)
        .unwrap_or_else(|| panic!("missing integer field {k}"))
}

/// TCP incast under full tracing: every exported counter matches what
/// the simulator itself reported. (One test fn: `TFC_RESULTS_DIR` is
/// process-global, so concurrent tests must not race on it.)
#[test]
fn exported_incast_artifacts_reconcile_with_ground_truth() {
    let tmp = std::env::temp_dir().join("tfc_e2e_telemetry");
    fs::remove_dir_all(&tmp).ok();
    std::env::set_var("TFC_RESULTS_DIR", &tmp);

    // Classic incast with fresh connections over TCP: enough senders
    // into a 1 Gbps port to overflow the buffer and force drops, so the
    // reconciliation below checks a non-trivial value.
    let mut cfg = IncastExpConfig::testbed(Proto::Tcp, 24, 2);
    cfg.telemetry = TelemetryConfig::full("e2e-incast");
    let r = experiments::incast::run(&cfg);

    let dir = tmp.join("e2e-incast");
    let manifest = load(&dir, "manifest.json");
    let counters = load(&dir, "counters.json");
    let events = load(&dir, "events.json");
    let flows = load(&dir, "flows.json");
    let slots_csv = fs::read_to_string(dir.join("tfc_slots.csv")).unwrap();

    assert_eq!(manifest.get("run").unwrap().as_str(), Some("e2e-incast"));
    assert_eq!(i64_of(&manifest, "seed"), cfg.seed as i64);

    // Host ids from the flow table; any drop at a non-host node is a
    // switch drop. (Host NICs are bounded too, so host drops can exist
    // and must be excluded: `IncastExpResult::drops` is switch-only.)
    let fl = flows.as_array().expect("flows.json array");
    let hosts: BTreeSet<i64> = fl
        .iter()
        .flat_map(|f| [i64_of(f, "src"), i64_of(f, "dst")])
        .collect();
    let recs = events.as_array().expect("events.json array");
    let drop_recs: Vec<&Value> = recs
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some("pkt_drop"))
        .collect();
    let switch_drops = drop_recs
        .iter()
        .filter(|r| !hosts.contains(&i64_of(r, "node")))
        .count() as u64;
    assert!(r.drops > 0, "incast setup should overflow the buffer");
    assert_eq!(switch_drops, r.drops, "switch drops reconcile");

    // Full mode stores every record, so the exact counter equals the
    // stored drop records (host + switch).
    let ev_counts = counters.get("events").expect("counters.events");
    assert_eq!(i64_of(ev_counts, "pkt_drop") as usize, drop_recs.len());
    assert_eq!(i64_of(&counters, "evicted"), 0);
    assert_eq!(i64_of(&counters, "sampled_out"), 0);

    // Retransmits: event count == sum of per-flow ground truth.
    let rtx_flows: i64 = fl.iter().map(|f| i64_of(f, "retransmits")).sum();
    assert!(rtx_flows > 0, "drops should force retransmissions");
    assert_eq!(i64_of(ev_counts, "flow_retransmit"), rtx_flows);

    // Delivered bytes: per-packet deliver events sum to the per-flow
    // delivered totals.
    let deliver_bytes: i64 = recs
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some("pkt_deliver"))
        .map(|r| i64_of(r, "bytes"))
        .sum();
    let flow_delivered: i64 = fl.iter().map(|f| i64_of(f, "delivered")).sum();
    assert_eq!(deliver_bytes, flow_delivered, "delivered bytes reconcile");

    // The slot CSV parses (empty body: droptail ports close no slots).
    let slots = telemetry::export::parse_slots_csv(&slots_csv).unwrap();
    assert!(slots.is_empty(), "TCP runs produce no TFC gauges");

    fs::remove_dir_all(&tmp).ok();
    std::env::remove_var("TFC_RESULTS_DIR");
}
