//! Multipath integration: deterministic ECMP spray across fat-tree
//! uplinks, counted no-route drops instead of panics, and selection-time
//! route repair when an equal-cost member dies.

use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::fault::FaultAction;
use simnet::node::Node;
use simnet::policy::DropTail;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::{fat_tree, star};
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::{LogMode, TelemetryConfig, TraceEvent};
use transport::TcpStack;

fn traced() -> TelemetryConfig {
    TelemetryConfig {
        events: LogMode::Full,
        ..Default::default()
    }
}

/// Regression for the old `panic!("switch ... has no route ...")`: a
/// destination made unreachable by route surgery turns packets into
/// counted `no_route_drops` on the ingress port, with `pkt_drop`
/// telemetry, and the run finishes cleanly.
#[test]
fn missing_route_is_a_counted_drop_not_a_panic() {
    let (t, hosts, sw) = star(3, Bandwidth::gbps(1), Dur::micros(1));
    let net = t.build(|_, _| Box::new(DropTail));
    let mut sim = Simulator::new(
        net,
        Box::new(TcpStack::default()),
        NullApp,
        SimConfig {
            seed: 3,
            end: Some(Time(Dur::millis(50).as_nanos())),
            telemetry: traced(),
            ..Default::default()
        },
    );
    // Surgery: the switch forgets how to reach hosts[1].
    sim.core_mut().set_next_hops(sw, hosts[1], &[]);
    assert!(sim.core().next_hops_of(sw, hosts[1]).is_empty());
    let drops_before = sim.core().telemetry().log.count_of("pkt_drop");
    let f = sim.core_mut().start_flow(FlowSpec {
        src: hosts[0],
        dst: hosts[1],
        bytes: Some(20_000),
        weight: 1,
    });
    sim.run();
    // The flow cannot complete, but nothing panicked and every attempt
    // was accounted: hosts[0] is on switch port 0, so its SYNs (and
    // retries) show up there as no-route drops.
    assert!(sim.core().flow(f).receiver_done_at.is_none());
    let stats = sim.core().port_stats(sw, 0);
    assert!(stats.no_route_drops > 0, "stats: {stats:?}");
    assert!(sim.core().telemetry().log.count_of("pkt_drop") > drops_before);
    // Restoring the route heals forwarding for a fresh flow.
    sim.core_mut().set_next_hops(sw, hosts[1], &[1]);
    assert_eq!(sim.core().next_hops_of(sw, hosts[1]), vec![1]);
}

/// Many flows between the same host pair spread across both edge
/// uplinks of a k=4 fat-tree — the per-flow hash sprays them — while
/// each flow's own packets stay on one deterministic path.
#[test]
fn flows_spray_across_equal_cost_uplinks() {
    let (t, hosts, _) = fat_tree(4, Bandwidth::gbps(1), Bandwidth::gbps(10), Dur::micros(2));
    let net = t.build(|_, _| Box::new(DropTail));
    let src = hosts[0];
    let dst = *hosts.last().unwrap(); // different pod
    let edge0 = {
        let Node::Host(h) = &net.nodes[src.0 as usize] else {
            panic!()
        };
        h.nic.link.peer
    };
    let mut sim = Simulator::new(
        net,
        Box::new(TcpStack::default()),
        NullApp,
        SimConfig {
            seed: 11,
            end: Some(Time(Dur::millis(80).as_nanos())),
            ..Default::default()
        },
    );
    let uplinks = sim.core().next_hops_of(edge0, dst);
    assert_eq!(uplinks.len(), 2, "k=4 edge has two uplinks");
    let mut flows = Vec::new();
    for _ in 0..8 {
        flows.push(sim.core_mut().start_flow(FlowSpec {
            src,
            dst,
            bytes: Some(100_000),
            weight: 1,
        }));
    }
    sim.run();
    for f in flows {
        assert!(
            sim.core().flow(f).receiver_done_at.is_some(),
            "flow {f:?} incomplete"
        );
    }
    // Both uplinks carried data: 8 flows over 2 equal-cost members.
    for &p in &uplinks {
        let tx = sim.core().port_stats(edge0, p).tx_bytes;
        assert!(tx > 0, "uplink {p} of {edge0:?} carried nothing");
    }
}

/// Killing one edge uplink makes the surviving equal-cost member absorb
/// every flow (selection-time repair): the dead port transmits nothing,
/// traffic keeps moving, and the switch end of the downed link records
/// a `Rerouted` event counting the absorbable destinations.
#[test]
fn link_down_reroutes_onto_surviving_members()  {
    let k = 4usize;
    let (t, hosts, _) = fat_tree(4, Bandwidth::gbps(1), Bandwidth::gbps(10), Dur::micros(2));
    let net = t.build(|_, _| Box::new(DropTail));
    let src = hosts[0];
    let dst = *hosts.last().unwrap();
    let edge0 = {
        let Node::Host(h) = &net.nodes[src.0 as usize] else {
            panic!()
        };
        h.nic.link.peer
    };
    let mut sim = Simulator::new(
        net,
        Box::new(TcpStack::default()),
        NullApp,
        SimConfig {
            seed: 7,
            end: Some(Time(Dur::millis(400).as_nanos())),
            telemetry: traced(),
            ..Default::default()
        },
    );
    let uplinks = sim.core().next_hops_of(edge0, dst);
    let (dead, alive) = (uplinks[0], uplinks[1]);
    sim.core_mut()
        .inject_fault(Time::ZERO, FaultAction::LinkDown { node: edge0, port: dead });
    let mut flows = Vec::new();
    for _ in 0..6 {
        flows.push(sim.core_mut().start_flow(FlowSpec {
            src,
            dst,
            bytes: Some(50_000),
            weight: 1,
        }));
    }
    sim.run();
    // The dead uplink carried nothing; the survivor carried everything.
    assert_eq!(sim.core().port_stats(edge0, dead).tx_bytes, 0);
    assert!(sim.core().port_stats(edge0, alive).tx_bytes > 0);
    // Repair was recorded at the edge end with the absorbable-dest
    // count: all 3*k^2/4 out-of-pod hosts plus the k/2 hosts behind the
    // pod's other edge reach the survivor (14 for k=4). The agg end of
    // the same link has only single-path entries through it: dests 0.
    let reroutes: Vec<(u32, u64)> = sim
        .core()
        .telemetry()
        .log
        .records()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::Rerouted { node, dests, .. } => Some((node, dests)),
            _ => None,
        })
        .collect();
    let expected = 3 * k * k / 4 + k / 2;
    assert!(
        reroutes.contains(&(edge0.0, expected as u64)),
        "missing edge-end reroute record: {reroutes:?}"
    );
    assert_eq!(reroutes.len(), 2, "one record per switch end");
    // Forward traffic is fully absorbed; the reverse direction loses
    // the flows whose ACKs hash through the partitioned aggregation
    // switch (it has no sibling toward edge0 — fault drops, by design),
    // so at least the absorbed flows complete.
    let done = flows
        .iter()
        .filter(|&&f| sim.core().flow(f).receiver_done_at.is_some())
        .count();
    assert!(done > 0, "no flow survived the absorbed reroute");
}
