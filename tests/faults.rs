//! Fault-injection integration: chaos runs are byte-reproducible,
//! `close_flow` is safe on dead flows, and injected faults actually
//! hurt — and heal.

use std::fs;

use experiments::faults::{self, FaultsConfig, Scenario};
use experiments::Proto;
use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::packet::FlowId;
use simnet::policy::DropTail;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use transport::TcpStack;

/// Identical seed + identical fault timeline ⇒ byte-identical artifact
/// bundles, file for file. (The chaos configs keep wall-clock profiling
/// off precisely so this holds.)
#[test]
fn identical_chaos_runs_export_byte_identical_artifacts() {
    let tmp = std::env::temp_dir().join("tfc_chaos_determinism");
    fs::remove_dir_all(&tmp).ok();
    std::env::set_var("TFC_RESULTS_DIR", &tmp);

    let cfg = FaultsConfig::exporting(Proto::Tfc, Scenario::LinkFlap, "det");
    let first = faults::run(&cfg).export_dir.expect("artifacts exported");
    let keep = tmp.join("det-first");
    fs::rename(&first, &keep).expect("stash first run");
    let second = faults::run(&cfg).export_dir.expect("artifacts exported");

    for name in [
        "manifest.json",
        "counters.json",
        "events.json",
        "flows.json",
        "tfc_slots.csv",
    ] {
        let a = fs::read(keep.join(name)).expect(name);
        let b = fs::read(second.join(name)).expect(name);
        assert!(a == b, "{name} differs between identical chaos runs");
    }

    fs::remove_dir_all(&tmp).ok();
    std::env::remove_var("TFC_RESULTS_DIR");
}

/// A fault can kill a flow's endpoint state behind the workload's back;
/// closing a flow that already finished (sender torn down at FIN),
/// closing it again, or closing one that never existed must all be
/// silent no-ops.
#[test]
fn closing_a_dead_or_unknown_flow_is_a_no_op() {
    let (t, hosts, _) = star(3, Bandwidth::gbps(1), Dur::micros(1));
    let net = t.build(|_, _| Box::new(DropTail));
    let mut sim = Simulator::new(
        net,
        Box::new(TcpStack::default()),
        NullApp,
        SimConfig {
            seed: 7,
            end: Some(Time(Dur::secs(2).as_nanos())),
            ..Default::default()
        },
    );
    let f = sim.core_mut().start_flow(FlowSpec {
        src: hosts[0],
        dst: hosts[1],
        bytes: Some(50_000),
        weight: 1,
    });
    sim.run();
    assert!(
        sim.core().flow(f).receiver_done_at.is_some(),
        "flow should complete"
    );
    let delivered = sim.core().flow(f).delivered;
    sim.core_mut().close_flow(f);
    sim.core_mut().close_flow(f);
    sim.core_mut().close_flow(FlowId(u64::MAX));
    assert_eq!(sim.core().flow(f).delivered, delivered);
}

/// A loss burst on the bottleneck forces real drops, and they are
/// attributed to the fault, not to queue overflow — TFC keeps the queue
/// bounded even while the link is lossy. (No recovery assertion: TFC
/// assumes a lossless fabric and has no fast loss recovery, so stalled
/// flows sit out the 200 ms minimum RTO, past this horizon.)
#[test]
fn loss_burst_drops_are_attributed_to_the_fault() {
    let r = faults::run(&FaultsConfig::scaled(Proto::Tfc, Scenario::LossBurst));
    assert!(r.fault_drops > 0, "a 10% loss window must drop packets");
    assert_eq!(r.queue_drops, 0, "TFC must not overflow the queue");
    assert!(r.delivered > 0);
    assert!(r.dip.is_some(), "pre-fault baseline exists");
}

/// A mid-run rate renegotiation (1 Gbps → 100 Mbps → 1 Gbps) dips
/// goodput to roughly the degraded rate and recovers after restore.
#[test]
fn rate_dip_degrades_and_recovers() {
    let r = faults::run(&FaultsConfig::scaled(Proto::Tfc, Scenario::RateDip));
    let dip = r.dip.expect("pre-fault baseline exists");
    assert!(
        dip.depth > 0.5,
        "a 10x rate dip must show up in goodput (depth {:.2})",
        dip.depth
    );
    assert!(
        dip.recovery_ns.is_some(),
        "goodput must recover after the rate is restored"
    );
}
