//! The weighted-allocation extension: §4.1 notes the token could be
//! split "according to any allocation policies"; this implementation
//! carries a per-flow weight in the header and allocates
//! `W_i = w_i × T / Σw`. Two competing flows with weights 1 and 3 should
//! see goodput in roughly a 1:3 ratio.

use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};

fn weighted_run(w1: u8, w2: u8) -> (u64, u64, u64) {
    let (t, hosts, _) = star(3, Bandwidth::gbps(1), Dur::micros(20));
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            end: Some(Time(Dur::millis(100).as_nanos())),
            ..Default::default()
        },
    );
    let f1 = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[0], hosts[2]).with_weight(w1));
    let f2 = sim
        .core_mut()
        .start_flow(FlowSpec::open_ended(hosts[1], hosts[2]).with_weight(w2));
    // Keep both backlogged for the whole run.
    sim.core_mut().push_data(f1, 64 * 1024 * 1024);
    sim.core_mut().push_data(f2, 64 * 1024 * 1024);
    sim.run();
    (
        sim.core().flow(f1).delivered,
        sim.core().flow(f2).delivered,
        sim.core().total_drops(),
    )
}

#[test]
fn equal_weights_share_equally() {
    let (d1, d2, drops) = weighted_run(1, 1);
    assert_eq!(drops, 0);
    let ratio = d2 as f64 / d1 as f64;
    assert!(
        (0.85..=1.18).contains(&ratio),
        "1:1 weights gave ratio {ratio:.2} ({d1} vs {d2})"
    );
}

#[test]
fn three_to_one_weights_share_three_to_one() {
    let (d1, d2, drops) = weighted_run(1, 3);
    assert_eq!(drops, 0);
    let ratio = d2 as f64 / d1 as f64;
    assert!(
        (2.0..=4.2).contains(&ratio),
        "1:3 weights gave ratio {ratio:.2} ({d1} vs {d2})"
    );
    // The link is still fully used and not over-driven.
    let total_bps = (d1 + d2) as f64 * 8.0 / 0.1;
    assert!(total_bps > 0.7e9, "aggregate only {total_bps:.2e}");
}

#[test]
fn weights_do_not_break_zero_loss() {
    for (a, b) in [(1, 2), (2, 5), (1, 8)] {
        let (_, _, drops) = weighted_run(a, b);
        assert_eq!(drops, 0, "weights {a}:{b} caused drops");
    }
}
