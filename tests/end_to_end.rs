//! End-to-end smoke tests: every protocol stack moves bytes correctly
//! across a switched topology and the paper's headline properties show
//! up at small scale.

use simnet::app::NullApp;
use simnet::endpoint::{FlowSpec, ProtocolStack};
use simnet::policy::{DropTail, EcnMark};
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};
use transport::{DctcpStack, TcpStack};

const FLOW_BYTES: u64 = 2_000_000;

fn run_two_flows(
    stack: Box<dyn ProtocolStack>,
    policy: &str,
) -> (Simulator<NullApp>, simnet::FlowId, simnet::FlowId) {
    let (t, hosts, _sw) = star(3, Bandwidth::gbps(1), Dur::micros(1));
    let net = match policy {
        "tfc" => t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default())),
        "ecn" => t.build(|_, _| Box::new(EcnMark::new(32_000))),
        _ => t.build(|_, _| Box::new(DropTail)),
    };
    let mut sim = Simulator::new(net, stack, NullApp, SimConfig::default());
    let f1 = sim.core_mut().start_flow(FlowSpec {
        src: hosts[0],
        dst: hosts[2],
        bytes: Some(FLOW_BYTES),
        weight: 1,
    });
    let f2 = sim.core_mut().start_flow(FlowSpec {
        src: hosts[1],
        dst: hosts[2],
        bytes: Some(FLOW_BYTES),
        weight: 1,
    });
    sim.run();
    (sim, f1, f2)
}

fn assert_both_complete(sim: &Simulator<NullApp>, f1: simnet::FlowId, f2: simnet::FlowId) {
    for f in [f1, f2] {
        let st = sim.core().flow(f);
        assert_eq!(st.delivered, FLOW_BYTES, "flow {f:?} delivered all bytes");
        assert!(st.receiver_done_at.is_some(), "flow {f:?} completed");
    }
}

#[test]
fn tcp_transfers_complete() {
    let (sim, f1, f2) = run_two_flows(Box::new(TcpStack::default()), "droptail");
    assert_both_complete(&sim, f1, f2);
}

#[test]
fn dctcp_transfers_complete() {
    let (sim, f1, f2) = run_two_flows(Box::new(DctcpStack::default()), "ecn");
    assert_both_complete(&sim, f1, f2);
}

#[test]
fn tfc_transfers_complete_without_loss() {
    let (sim, f1, f2) = run_two_flows(Box::new(TfcStack::default()), "tfc");
    assert_both_complete(&sim, f1, f2);
    assert_eq!(sim.core().total_drops(), 0, "TFC must not drop");
}

#[test]
fn tfc_finishes_in_reasonable_time() {
    // 2 × 2 MB over a shared 1 Gbps bottleneck ≥ 32 ms ideal; allow
    // modest protocol overhead on top.
    let (sim, f1, f2) = run_two_flows(Box::new(TfcStack::default()), "tfc");
    for f in [f1, f2] {
        let done = sim.core().flow(f).receiver_done_at.expect("completed");
        assert!(
            done < Time(Dur::millis(45).as_nanos()),
            "TFC flow {f:?} took {done} for 2 MB over a shared 1 Gbps"
        );
    }
}

#[test]
fn tfc_keeps_bottleneck_queue_tiny() {
    let (sim, _, f2) = run_two_flows(Box::new(TfcStack::default()), "tfc");
    // The receiver is hosts[2]; its switch port is the bottleneck.
    let sw = sim.core().switch_ids()[0];
    let dst = sim.core().flow(f2).spec.dst;
    let port = sim.core().route_of(sw, dst).expect("route");
    let stats = sim.core().port_stats(sw, port);
    let (max_q, drops) = (stats.max_queue_bytes, stats.drops);
    assert_eq!(drops, 0);
    // The very first slot runs on the initial 160 µs token against a
    // ~29 µs pipe, so a bounded startup spike is expected; it must stay
    // far below the 256 KB buffer and the steady state must be tiny.
    assert!(
        max_q <= 32_000,
        "TFC bottleneck queue peaked at {max_q} bytes"
    );
}

#[test]
fn tcp_fills_buffer_tfc_does_not() {
    let (tcp_sim, _, f2) = run_two_flows(Box::new(TcpStack::default()), "droptail");
    let sw = tcp_sim.core().switch_ids()[0];
    let dst = tcp_sim.core().flow(f2).spec.dst;
    let port = tcp_sim.core().route_of(sw, dst).expect("route");
    let tcp_max_q = tcp_sim.core().port_stats(sw, port).max_queue_bytes;

    let (tfc_sim, _, _) = run_two_flows(Box::new(TfcStack::default()), "tfc");
    let tfc_max_q = tfc_sim.core().port_stats(sw, port).max_queue_bytes;
    assert!(
        tfc_max_q * 4 < tcp_max_q.max(1),
        "TFC queue ({tfc_max_q}) should be far below TCP's ({tcp_max_q})"
    );
}

#[test]
fn same_seed_is_deterministic() {
    let run = || {
        let (sim, f1, _) = run_two_flows(Box::new(TfcStack::default()), "tfc");
        (
            sim.core().now(),
            sim.core().events_processed(),
            sim.core().flow(f1).receiver_done_at,
        )
    };
    assert_eq!(run(), run());
}
