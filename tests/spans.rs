//! Causal span-tracing acceptance: tracing must be *passive*.
//!
//! Three incast runs — trace off, full, and flow-sampled — share one
//! seed. Off must record zero span entries (checked via the
//! thread-local record counter, mirroring the zero-clone arena gate)
//! and must not write `spans.json`; every non-span artifact must be
//! byte-identical across all three modes, because observing a run can
//! never change it. Full-trace runs must drain their per-packet state
//! by simulation end (resident memory stays O(in-flight packets)) and
//! must populate each lifecycle stage's sketch with ordered quantiles.
//!
//! Kept as a single `#[test]`: every run reads the process-global
//! `TFC_RESULTS_DIR` environment variable.

use std::path::PathBuf;

use experiments::artifacts::maybe_export;
use simnet::app::NullApp;
use simnet::endpoint::FlowSpec;
use simnet::sim::{SimConfig, Simulator};
use simnet::topology::star;
use simnet::units::{Bandwidth, Dur, Time};
use telemetry::span::{
    thread_span_records, STAGE_E2E_DATA, STAGE_HOST_Q, STAGE_NAMES, STAGE_SW_Q, STAGE_WIRE,
};
use telemetry::{LogMode, SpanTracker, TelemetryConfig, TraceConfig};
use tfc::config::TfcSwitchConfig;
use tfc::{TfcStack, TfcSwitchPolicy};

/// What one traced (or untraced) incast run leaves behind.
struct RunOut {
    dir: PathBuf,
    tracked: u64,
    active: usize,
    records: u64,
}

/// 8-sender incast through a star hub, fixed seed, full event log.
/// Only the trace mode varies across calls; `inspect` sees the live
/// tracker before the simulator is dropped.
fn run_incast(trace: TraceConfig, run: &str, inspect: impl FnOnce(&SpanTracker)) -> RunOut {
    let before = thread_span_records();
    let (t, hosts, _hub) = star(9, Bandwidth::gbps(1), Dur::micros(2));
    let receiver = hosts[0];
    let net = t.build(TfcSwitchPolicy::factory(TfcSwitchConfig::default()));
    let mut sim = Simulator::new(
        net,
        Box::new(TfcStack::default()),
        NullApp,
        SimConfig {
            seed: 21,
            end: Some(Time(Dur::millis(30).as_nanos())),
            telemetry: TelemetryConfig {
                events: LogMode::Full,
                sample_one_in: 1,
                tfc_gauges: true,
                profile: false,
                trace,
                export: Some(run.to_string()),
            },
            ..Default::default()
        },
    );
    for (i, &src) in hosts[1..].iter().enumerate() {
        sim.core_mut()
            .start_flow(FlowSpec::sized(src, receiver, 48_000 + 1_000 * i as u64));
    }
    sim.run();
    let dir = maybe_export(sim.core(), "star(9)", "span acceptance").expect("export dir");
    let spans = &sim.core().telemetry().spans;
    inspect(spans);
    RunOut {
        dir,
        tracked: spans.tracked_packets(),
        active: spans.active_len(),
        records: thread_span_records() - before,
    }
}

#[test]
fn tracing_is_zero_cost_off_passive_on_and_bounded() {
    let base = std::env::temp_dir().join("tfc_spans_test");
    std::fs::remove_dir_all(&base).ok();
    std::env::set_var("TFC_RESULTS_DIR", &base);

    let off = run_incast(TraceConfig::Off, "spans_off", |_| {});
    assert_eq!(off.records, 0, "TraceConfig::Off must record zero span entries");
    assert_eq!(off.tracked, 0);
    assert!(
        !off.dir.join("spans.json").exists(),
        "an untraced run must not write spans.json"
    );

    let full = run_incast(TraceConfig::Full, "spans_full", |spans| {
        // Every core lifecycle stage fills in on an incast: sender NIC
        // queue (hop 0), hub queue (hop 1), host->hub wire (hop 1), and
        // data end-to-end. Quantiles must be ordered and bracketed by
        // the observed extremes, within the sketch's relative error.
        for (stage, hop) in [
            (STAGE_HOST_Q, 0u8),
            (STAGE_SW_Q, 1),
            (STAGE_WIRE, 1),
            (STAGE_E2E_DATA, 0),
        ] {
            let name = STAGE_NAMES[stage as usize];
            let sk = spans
                .sketch(stage, hop)
                .unwrap_or_else(|| panic!("no sketch for {name}@{hop}"));
            assert!(sk.count() > 0, "{name}@{hop} is empty");
            let p50 = sk.quantile(0.5).unwrap();
            let p99 = sk.quantile(0.99).unwrap();
            let p999 = sk.quantile(0.999).unwrap();
            let (min, max) = (sk.min().unwrap(), sk.max().unwrap());
            let slack = 2.0 * sk.alpha();
            assert!(
                min * (1.0 - slack) <= p50 && p50 <= p99 && p99 <= p999,
                "{name}@{hop}: unordered quantiles {p50} {p99} {p999} (min {min})"
            );
            assert!(
                p999 <= max * (1.0 + slack),
                "{name}@{hop}: p999 {p999} above max {max}"
            );
        }
    });
    assert!(full.records > 0, "full trace recorded nothing");
    assert!(full.tracked > 0);
    assert_eq!(
        full.active, 0,
        "span state must drain with the packets that own it"
    );
    assert!(full.dir.join("spans.json").exists());

    let sampled = run_incast(
        TraceConfig::SampledFlows {
            permille: 500,
            seed: 3,
        },
        "spans_sampled",
        |_| {},
    );
    assert!(
        sampled.tracked > 0 && sampled.tracked < full.tracked,
        "permille=500 should track a strict, non-empty subset \
         ({} of {} packets)",
        sampled.tracked,
        full.tracked
    );

    // The simulation must be oblivious to being observed: every
    // non-span artifact is byte-identical whatever the trace mode.
    for file in ["counters.json", "events.json", "flows.json", "tfc_slots.csv"] {
        let want = std::fs::read(off.dir.join(file)).unwrap();
        assert!(!want.is_empty(), "{file} is empty");
        for (mode, dir) in [("full", &full.dir), ("sampled", &sampled.dir)] {
            let got = std::fs::read(dir.join(file)).unwrap();
            assert_eq!(want, got, "{file} differs between off and {mode} tracing");
        }
    }

    std::env::remove_var("TFC_RESULTS_DIR");
    std::fs::remove_dir_all(&base).ok();
}
